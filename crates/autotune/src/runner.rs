//! The exhaustive sweep runner.

use crate::record::{Dataset, Measurement};
use crate::space::ParamSpace;
use ibcf_core::flops::cholesky_flops_std;
use ibcf_gpu_sim::GpuSpec;
use ibcf_kernels::{time_config, KernelConfig};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sweep options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Batch size of every launch (the paper uses 16,384).
    pub batch: usize,
    /// Print progress every this many configurations (0 = silent).
    pub progress_every: usize,
    /// Relative measurement noise (standard deviation of a multiplicative
    /// Gaussian-ish factor). Real autotuning corpora are noisy; setting
    /// this non-zero lets the analysis pipeline be exercised under
    /// realistic conditions. 0 = deterministic model output.
    pub noise_sigma: f64,
    /// Seed for the noise (per-configuration deterministic).
    pub noise_seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { batch: 16_384, progress_every: 0, noise_sigma: 0.0, noise_seed: 0 }
    }
}

/// A cheap deterministic standard-normal-ish sample (sum of uniforms) for
/// the measurement-noise model, keyed by configuration.
fn noise_factor(config: &KernelConfig, sigma: f64, seed: u64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let mut h = seed ^ 0x9E3779B97F4A7C15;
    let mut mix = |x: u64| {
        h ^= x.wrapping_mul(0xA24BAED4963EE407);
        h = h.rotate_left(23).wrapping_mul(0x9FB21C651E98DF25);
    };
    mix(config.n as u64);
    mix(config.nb as u64);
    mix(config.chunk_size as u64);
    mix(config.chunked as u64 + 2 * (config.fast_math as u64));
    mix(match config.looking {
        ibcf_core::Looking::Right => 11,
        ibcf_core::Looking::Left => 13,
        ibcf_core::Looking::Top => 17,
    });
    // Irwin-Hall(4) centered: mean 0, variance 1/3; scale to unit-ish.
    let mut z = 0.0f64;
    let mut state = h;
    for _ in 0..4 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        z += (state >> 40) as f64 / (1u64 << 24) as f64 - 0.5;
    }
    (1.0 + sigma * z * 1.732).max(0.05)
}

/// Measures one configuration (deterministic model output).
pub fn measure(config: &KernelConfig, batch: usize, spec: &GpuSpec) -> Measurement {
    measure_noisy(config, batch, spec, 0.0, 0)
}

/// Measures one configuration with the multiplicative noise model.
pub fn measure_noisy(
    config: &KernelConfig,
    batch: usize,
    spec: &GpuSpec,
    noise_sigma: f64,
    noise_seed: u64,
) -> Measurement {
    let t = time_config(config, batch, spec);
    let flops = cholesky_flops_std(config.n) * batch as f64;
    let f = noise_factor(config, noise_sigma, noise_seed);
    Measurement {
        config: *config,
        batch,
        gflops: t.gflops(flops) * f,
        time_s: t.time_s / f,
        bottleneck: t.bottleneck,
        row_hit_rate: t.row_hit_rate,
        occupancy: t.occupancy.occupancy,
        dram_bytes: t.dram_bytes,
    }
}

/// Exhaustively sweeps `space` at one matrix dimension.
///
/// # Examples
///
/// ```
/// use ibcf_autotune::{sweep, ParamSpace, SweepOptions};
/// use ibcf_gpu_sim::GpuSpec;
///
/// let ds = sweep(
///     &ParamSpace::quick(),
///     8,
///     &GpuSpec::p100(),
///     &SweepOptions { batch: 1024, ..Default::default() },
/// );
/// assert_eq!(ds.measurements.len(), ParamSpace::quick().len_per_n());
/// ```
pub fn sweep(space: &ParamSpace, n: usize, spec: &GpuSpec, opts: &SweepOptions) -> Dataset {
    sweep_sizes(space, &[n], spec, opts)
}

/// Exhaustively sweeps `space` across several matrix dimensions, in
/// parallel (rayon) over configurations.
pub fn sweep_sizes(
    space: &ParamSpace,
    sizes: &[usize],
    spec: &GpuSpec,
    opts: &SweepOptions,
) -> Dataset {
    let mut all: Vec<KernelConfig> = Vec::new();
    for &n in sizes {
        all.extend(space.configs(n));
    }
    let done = AtomicUsize::new(0);
    let total = all.len();
    let measurements: Vec<Measurement> = all
        .par_iter()
        .map(|config| {
            let m = measure_noisy(config, opts.batch, spec, opts.noise_sigma, opts.noise_seed);
            if opts.progress_every > 0 {
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                if k.is_multiple_of(opts.progress_every) {
                    eprintln!("  swept {k}/{total}");
                }
            }
            m
        })
        .collect();
    Dataset { gpu: spec.name.clone(), batch: opts.batch, measurements }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_full_grid() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let ds = sweep(&space, 12, &spec, &SweepOptions { batch: 2048, ..Default::default() });
        assert_eq!(ds.measurements.len(), space.len_per_n());
        assert!(ds.measurements.iter().all(|m| m.gflops > 0.0 && m.time_s > 0.0));
        assert_eq!(ds.sizes(), vec![12]);
    }

    #[test]
    fn sweep_is_deterministic() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let opts = SweepOptions { batch: 1024, ..Default::default() };
        let a = sweep(&space, 8, &spec, &opts);
        let b = sweep(&space, 8, &spec, &opts);
        for (x, y) in a.measurements.iter().zip(&b.measurements) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.gflops, y.gflops);
        }
    }

    #[test]
    fn noise_perturbs_but_preserves_structure() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let clean = sweep(&space, 16, &spec, &SweepOptions { batch: 2048, ..Default::default() });
        let noisy = sweep(
            &space,
            16,
            &spec,
            &SweepOptions { batch: 2048, noise_sigma: 0.05, noise_seed: 9, ..Default::default() },
        );
        let mut rel = Vec::new();
        for (c, n) in clean.measurements.iter().zip(&noisy.measurements) {
            assert_eq!(c.config, n.config);
            rel.push((n.gflops / c.gflops - 1.0).abs());
        }
        let mean_dev = rel.iter().sum::<f64>() / rel.len() as f64;
        assert!(mean_dev > 0.005 && mean_dev < 0.2, "mean deviation {mean_dev}");
        // Noise must be reproducible.
        let noisy2 = sweep(
            &space,
            16,
            &spec,
            &SweepOptions { batch: 2048, noise_sigma: 0.05, noise_seed: 9, ..Default::default() },
        );
        for (a, b) in noisy.measurements.iter().zip(&noisy2.measurements) {
            assert_eq!(a.gflops, b.gflops);
        }
    }

    #[test]
    fn multi_size_sweep_covers_all_sizes() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let ds = sweep_sizes(
            &space,
            &[4, 8],
            &spec,
            &SweepOptions { batch: 512, ..Default::default() },
        );
        assert_eq!(ds.sizes(), vec![4, 8]);
        assert_eq!(ds.measurements.len(), 2 * space.len_per_n());
    }
}
