//! Tuned dispatch: turning the autotuning corpus into a runtime kernel
//! selector — what ATLAS-lineage libraries (and the BONSAI project this
//! paper's grant funded) do with sweep results.
//!
//! A [`DispatchTable`] holds the winning configuration per matrix size;
//! at run time, a request for dimension `n` gets the exact winner if `n`
//! was swept, or the winner of the nearest swept size with `n`
//! substituted — a sensible interpolation because the optimal qualitative
//! regime (full-vs-partial unroll, chunking, looking order) changes slowly
//! with `n`.

use crate::best::BestTable;
use crate::record::Dataset;
use ibcf_gpu_sim::{GpuSpec, KernelTiming, TraceCache};
use ibcf_kernels::{time_config_cached, KernelConfig, PlanKey};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::Path;

/// The name this table carried before the serving layer grew around it;
/// kept so existing imports keep compiling.
pub type TunedDispatch = DispatchTable;

/// How a dispatch table was produced: which selector, how much of the
/// space it measured, and what regret it guarantees. Written as an
/// optional header line by [`DispatchTable::save`]; tables from before
/// provenance existed load with `provenance = None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableProvenance {
    /// Selector strategy that chose the winners (e.g. `"exhaustive"`,
    /// `"analytic"`).
    pub selector: String,
    /// GPU spec name measured on.
    pub gpu: String,
    /// Batch size of every measurement.
    pub batch: usize,
    /// Configurations actually measured across all sizes.
    pub configs_evaluated: usize,
    /// Full grid size an exhaustive sweep would have measured.
    pub grid_total: usize,
    /// Worst per-size bound on relative regret vs the space's true best,
    /// when the selector computes one (early-stopping strategies).
    pub regret_bound: Option<f64>,
}

/// A per-size table of winning configurations.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct DispatchTable {
    /// Winning configuration per swept matrix dimension.
    pub table: BTreeMap<usize, KernelConfig>,
    /// How this table was produced, when known. The vendored serde shim
    /// treats `Option` fields as optional keys, so pre-provenance
    /// serialized tables deserialize with `None` here.
    pub provenance: Option<TableProvenance>,
}

impl DispatchTable {
    /// Builds the dispatch table from a sweep dataset, optionally
    /// restricted to one arithmetic mode (`Some(false)` = IEEE winners
    /// only — the common case, since fast-math changes numerics).
    pub fn from_dataset(ds: &Dataset, fast_math: Option<bool>) -> Self {
        let best = BestTable::new(ds);
        let mut table = BTreeMap::new();
        for n in ds.sizes() {
            let m = match fast_math {
                None => best.best(n),
                Some(f) => best.best_by_arith(n, f),
            };
            if let Some(m) = m {
                table.insert(n, m.config);
            }
        }
        DispatchTable {
            table,
            provenance: None,
        }
    }

    /// Number of tuned sizes.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if no sizes are tuned.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The configuration to use for dimension `n`: the exact winner if
    /// swept, otherwise the nearest swept size's winner re-targeted to `n`
    /// (ties break toward the smaller size). Returns `None` on an empty
    /// table.
    pub fn config_for(&self, n: usize) -> Option<KernelConfig> {
        if let Some(c) = self.table.get(&n) {
            return Some(*c);
        }
        let below = self.table.range(..=n).next_back();
        let above = self.table.range(n..).next();
        let nearest = match (below, above) {
            (Some((&bn, bc)), Some((&an, ac))) => {
                if n - bn <= an - n {
                    (bn, bc)
                } else {
                    (an, ac)
                }
            }
            (Some((&bn, bc)), None) => (bn, bc),
            (None, Some((&an, ac))) => (an, ac),
            (None, None) => return None,
        };
        let mut c = *nearest.1;
        c.n = n;
        Some(c)
    }

    /// Expected timing of the dispatched configuration for dimension `n`
    /// at `batch`, through a caller-shared plan cache — the online-tuning
    /// path: repeated queries (same `n`, different batches or arithmetic
    /// variants of a structural class) reuse one cached trace plan and pay
    /// only the pricing pass. Returns `None` on an empty table.
    pub fn time_for(
        &self,
        n: usize,
        batch: usize,
        spec: &GpuSpec,
        cache: &TraceCache<PlanKey>,
    ) -> Option<(KernelConfig, KernelTiming)> {
        let config = self.config_for(n)?;
        let timing = time_config_cached(&config, batch, spec, cache);
        Some((config, timing))
    }

    /// Saves the table as JSON lines: an optional provenance header line
    /// (when this table carries one), then one `n` + config entry per
    /// line. Tables without provenance write the exact pre-provenance
    /// format, so older readers stay compatible both ways.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        if let Some(p) = &self.provenance {
            let line = serde_json::json!({ "provenance": p });
            writeln!(f, "{line}")?;
        }
        for (n, config) in &self.table {
            let line = serde_json::json!({ "n": n, "config": config });
            writeln!(f, "{line}")?;
        }
        Ok(())
    }

    /// Loads a table saved by [`DispatchTable::save`].
    ///
    /// A `{"provenance": ...}` first line, when present, is parsed into
    /// [`DispatchTable::provenance`]; files from before provenance existed
    /// (entry lines only) load with `provenance = None`. Every entry line
    /// must parse, carry a matching `n`, and describe a structurally valid
    /// configuration — a table that silently dropped or mangled entries
    /// would mis-dispatch every request routed through it, so corruption
    /// is an `InvalidData` error, never a default.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut table = BTreeMap::new();
        let mut provenance = None;
        let mut saw_entry = false;
        for (lineno, line) in f.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let v: serde_json::Value = serde_json::from_str(&line)
                .map_err(|e| bad(format!("line {}: {e}", lineno + 1)))?;
            if let Some(p) = v.get("provenance") {
                if saw_entry || provenance.is_some() {
                    return Err(bad(format!(
                        "line {}: provenance must be the single first line",
                        lineno + 1
                    )));
                }
                provenance = Some(
                    serde_json::from_value::<TableProvenance>(p.clone())
                        .map_err(|e| bad(format!("line {}: bad provenance: {e}", lineno + 1)))?,
                );
                continue;
            }
            saw_entry = true;
            let n = v["n"]
                .as_u64()
                .ok_or_else(|| bad(format!("line {}: missing n", lineno + 1)))?
                as usize;
            let config: KernelConfig = serde_json::from_value(v["config"].clone())
                .map_err(|e| bad(format!("line {}: {e}", lineno + 1)))?;
            if config.n != n {
                return Err(bad(format!(
                    "line {}: entry n={n} disagrees with config n={}",
                    lineno + 1,
                    config.n
                )));
            }
            config
                .validate()
                .map_err(|e| bad(format!("line {}: {e}", lineno + 1)))?;
            if table.insert(n, config).is_some() {
                return Err(bad(format!(
                    "line {}: duplicate entry for n={n}",
                    lineno + 1
                )));
            }
        }
        Ok(DispatchTable { table, provenance })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{sweep_sizes, SweepOptions};
    use crate::space::ParamSpace;
    use ibcf_gpu_sim::GpuSpec;

    fn dispatch() -> (Dataset, DispatchTable) {
        let ds = sweep_sizes(
            &ParamSpace::quick(),
            &[8, 16, 32],
            &GpuSpec::p100(),
            &SweepOptions {
                batch: 4096,
                ..Default::default()
            },
        );
        let d = DispatchTable::from_dataset(&ds, Some(false));
        (ds, d)
    }

    #[test]
    fn exact_sizes_return_the_winner() {
        let (ds, d) = dispatch();
        assert_eq!(d.len(), 3);
        let best = BestTable::new(&ds);
        for n in [8usize, 16, 32] {
            let got = d.config_for(n).unwrap();
            let want = best.best_by_arith(n, false).unwrap().config;
            assert_eq!(got, want, "n={n}");
            assert!(!got.fast_math);
        }
    }

    #[test]
    fn unswept_sizes_interpolate_from_nearest() {
        let (_, d) = dispatch();
        // 12 is equidistant from 8 and 16: ties toward the smaller.
        let c12 = d.config_for(12).unwrap();
        assert_eq!(c12.n, 12);
        let c20 = d.config_for(20).unwrap();
        assert_eq!(c20.n, 20);
        // Beyond the table: clamp to the largest swept size's winner.
        let c64 = d.config_for(64).unwrap();
        assert_eq!(c64.n, 64);
        let c32 = d.config_for(32).unwrap();
        assert_eq!(c64.nb, c32.nb);
        assert_eq!(c64.looking, c32.looking);
        // All interpolated configs must be valid.
        for n in 1..=64 {
            d.config_for(n).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn extrapolation_below_the_smallest_swept_size_stays_valid() {
        use ibcf_core::spd::{fill_batch_spd, SpdKind};
        use ibcf_core::verify::batch_reconstruction_error;
        use ibcf_kernels::factorize_batch_device;
        // Force a winner with nb = 8 at the smallest swept size, so a
        // retarget to n = 2 exercises the nb > n clamp.
        let mut d = DispatchTable::default();
        d.table.insert(
            8,
            ibcf_kernels::KernelConfig {
                nb: 8,
                ..ibcf_kernels::KernelConfig::baseline(8)
            },
        );
        for n in [1usize, 2, 3, 5, 7] {
            let config = d.config_for(n).unwrap();
            assert_eq!(config.n, n);
            assert_eq!(config.nb, 8, "retarget keeps the winner's nb");
            assert!(config.nb_eff() <= n, "nb_eff must clamp to n");
            config.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            // The retargeted config must still factorize correctly.
            let batch = 64;
            let layout = config.layout(batch);
            let mut data = vec![0.0f32; ibcf_layout::BatchLayout::len(&layout)];
            fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 5);
            let orig = data.clone();
            factorize_batch_device(&config, batch, &mut data);
            let err = batch_reconstruction_error(&layout, &orig, &data);
            assert!(err < 1e-4, "n={n} via {config}: {err}");
        }
        // Same below-the-table path on a real swept dispatch.
        let (_, d) = dispatch();
        let c2 = d.config_for(2).unwrap();
        assert_eq!(c2.n, 2);
        c2.validate().unwrap();
    }

    #[test]
    fn save_load_round_trip() {
        let (_, d) = dispatch();
        let dir = std::env::temp_dir().join("ibcf_dispatch");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("dispatch.jsonl");
        d.save(&p).unwrap();
        let back = DispatchTable::load(&p).unwrap();
        assert_eq!(back.len(), d.len());
        for n in [8usize, 16, 32] {
            assert_eq!(back.config_for(n), d.config_for(n));
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_table_returns_none() {
        let d = DispatchTable::default();
        assert!(d.is_empty());
        assert!(d.config_for(16).is_none());
    }

    #[test]
    fn online_timing_reuses_cached_plans_across_batches() {
        use ibcf_kernels::time_config;
        let (_, d) = dispatch();
        let spec = GpuSpec::p100();
        let cache = TraceCache::default();
        // Two rounds of identical queries: the second round is all
        // cache hits, priced only.
        for _round in 0..2 {
            for batch in [1024usize, 4096, 16384] {
                for n in [8usize, 16, 32] {
                    let (config, timing) = d.time_for(n, batch, &spec, &cache).unwrap();
                    let fused = time_config(&config, batch, &spec);
                    assert_eq!(timing.time_s, fused.time_s, "n={n} batch={batch}");
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 18);
        assert!(
            stats.hits >= 9,
            "second round must hit, hits={}",
            stats.hits
        );
    }

    #[test]
    fn tuned_dispatch_factorizes_correctly_at_interpolated_sizes() {
        use ibcf_core::spd::{fill_batch_spd, SpdKind};
        use ibcf_core::verify::batch_reconstruction_error;
        use ibcf_kernels::factorize_batch_device;
        let (_, d) = dispatch();
        for n in [11usize, 24] {
            let config = d.config_for(n).unwrap();
            let batch = 64;
            let layout = config.layout(batch);
            let mut data = vec![0.0f32; ibcf_layout::BatchLayout::len(&layout)];
            fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 2);
            let orig = data.clone();
            factorize_batch_device(&config, batch, &mut data);
            let err = batch_reconstruction_error(&layout, &orig, &data);
            assert!(err < 1e-4, "n={n} via {config}: {err}");
        }
    }
}
