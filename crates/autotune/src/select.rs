//! The pluggable selector layer: one search driver, many strategies.
//!
//! Every way this repo chooses a kernel configuration — the exhaustive
//! sweep, the analytic prior ([`crate::analytic`]), hill climbing, the
//! zero-measurement heuristic — is a [`Selector`]: a candidate proposal
//! plus a stopping policy. One driver ([`run_search`]) owns the
//! measurement loop, the shared [`TraceCache`], deduplication, and the
//! CRC-framed sweep log, so `resume`, `merge`, and `verify-log` work the
//! same no matter which strategy produced the log.
//!
//! The headline strategy is [`AnalyticSelector`]: measure the analytic
//! model's candidates best-first and stop, Hutter–Solomonik style, once
//! the incumbent's measured time excludes the optimistic bounds of every
//! remaining candidate — the bound being the candidate's modeled time
//! scaled by the most optimistic model-trust ratio observed so far. On
//! the paper space this measures a few percent of the grid and recovers
//! a winner within a few percent of the exhaustive one.

use crate::analytic;
use crate::dispatch::{DispatchTable, TableProvenance};
use crate::heuristics::{heuristic_config, neighbors};
use crate::log::{grid_configs, ShardSpec, SweepLog, SweepLogHeader, SweepLogWriter};
use crate::log::{LOG_FORMAT, LOG_VERSION};
use crate::record::{Dataset, Measurement};
use crate::runner::{
    measure_opts, sweep_sizes_logged, sweep_sizes_with, ProgressSink, SweepOptions,
};
use crate::space::ParamSpace;
use ibcf_gpu_sim::{CacheStats, GpuSpec, TraceCache};
use ibcf_kernels::{KernelConfig, PlanKey};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::path::Path;
use std::time::Instant;

/// The fixed context of one search: where (space, size) and on what
/// (batch, GPU) configurations are being selected.
#[derive(Debug, Clone, Copy)]
pub struct SelectCtx<'a> {
    /// The parameter space candidates must come from.
    pub space: &'a ParamSpace,
    /// Matrix dimension being tuned.
    pub n: usize,
    /// Batch size of every measurement.
    pub batch: usize,
    /// Target GPU.
    pub spec: &'a GpuSpec,
}

/// A proposed configuration, optionally carrying the proposing model's
/// score (modeled time in seconds; lower is better).
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The configuration to measure.
    pub config: KernelConfig,
    /// The proposer's modeled time, when it has one.
    pub score: Option<f64>,
}

impl Candidate {
    /// A candidate without a model score.
    pub fn plain(config: KernelConfig) -> Self {
        Candidate {
            config,
            score: None,
        }
    }
}

/// One completed evaluation: the candidate and its measurement.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// What was proposed (including the model score, if any).
    pub candidate: Candidate,
    /// What the simulator measured.
    pub m: Measurement,
}

/// A search strategy: proposes candidates and decides when to stop.
///
/// The driver measures candidates in proposal order, deduplicating
/// configurations; adaptive strategies return more via
/// [`Selector::refine`] after seeing the history.
pub trait Selector {
    /// Short strategy name, recorded in dispatch-table provenance.
    fn name(&self) -> &'static str;

    /// The initial candidate list, best-first when the strategy can rank.
    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<Candidate>;

    /// Proposes more candidates after the queue drains (adaptive
    /// strategies). Returning an empty list ends the search.
    fn refine(&mut self, _ctx: &SelectCtx<'_>, _history: &[Evaluation]) -> Vec<Candidate> {
        Vec::new()
    }

    /// Stopping policy, consulted before each measurement: `true` ends
    /// the search with `remaining` unmeasured.
    fn should_stop(
        &mut self,
        _ctx: &SelectCtx<'_>,
        _history: &[Evaluation],
        _remaining: &[Candidate],
    ) -> bool {
        false
    }

    /// The strategy's bound on relative regret vs the space's true best,
    /// when it can compute one (set by the early-stopping rule).
    fn regret_bound(&self) -> Option<f64> {
        None
    }

    /// `true` if this strategy measures the entire space — the driver may
    /// then use the parallel exhaustive sweep path.
    fn exhaustive(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// The paper's strategy: measure everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSelector;

impl Selector for ExhaustiveSelector {
    fn name(&self) -> &'static str {
        "exhaustive"
    }
    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<Candidate> {
        ctx.space
            .configs(ctx.n)
            .into_iter()
            .map(Candidate::plain)
            .collect()
    }
    fn exhaustive(&self) -> bool {
        true
    }
}

/// Model-guided search with confidence-interval early stopping.
///
/// Candidates are the analytic ranking, measured best-modeled-first. The
/// incumbent's measured time `t*` is compared against the optimistic
/// bound of the best remaining candidate: its modeled time `s` scaled by
/// the most optimistic measured-over-modeled ratio `r_lo` seen so far,
/// shrunk by `3σ` for measurement noise and by the configurable `guard`.
/// Once `t* ≤ guard · r_lo · s · (1 − 3σ)` no remaining candidate can
/// plausibly win, and the search stops. A hard cap (`max_frac` of the
/// grid) bounds the evaluation count even when the model is poorly
/// calibrated.
#[derive(Debug, Clone)]
pub struct AnalyticSelector {
    /// Minimum measurements before the stopping rule may fire.
    pub min_evals: usize,
    /// Hard cap as a fraction of the per-size grid.
    pub max_frac: f64,
    /// Multiplier on the optimistic bound (< 1 keeps measuring longer).
    pub guard: f64,
    /// The sweep's measurement-noise sigma (widens the stopping margin).
    pub noise_sigma: f64,
    bound: Option<f64>,
}

impl AnalyticSelector {
    /// The default policy under the given measurement noise.
    pub fn new(noise_sigma: f64) -> Self {
        AnalyticSelector {
            min_evals: 24,
            max_frac: 0.10,
            guard: 1.0,
            noise_sigma,
            bound: None,
        }
    }

    fn cap(&self, grid: usize) -> usize {
        ((grid as f64 * self.max_frac).floor() as usize).max(self.min_evals)
    }
}

impl Selector for AnalyticSelector {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<Candidate> {
        analytic::rank_candidates(ctx.space, ctx.n, ctx.batch, ctx.spec)
            .into_iter()
            .map(|s| Candidate {
                config: s.config,
                score: Some(s.time_s),
            })
            .collect()
    }

    fn should_stop(
        &mut self,
        ctx: &SelectCtx<'_>,
        history: &[Evaluation],
        remaining: &[Candidate],
    ) -> bool {
        if history.len() < self.min_evals || remaining.is_empty() {
            return false;
        }
        let t_best = history
            .iter()
            .map(|e| e.m.time_s)
            .fold(f64::INFINITY, f64::min);
        let r_lo = history
            .iter()
            .filter_map(|e| e.candidate.score.map(|s| e.m.time_s / s))
            .fold(f64::INFINITY, f64::min);
        let s_next = remaining
            .iter()
            .filter_map(|c| c.score)
            .fold(f64::INFINITY, f64::min);
        if !r_lo.is_finite() || !s_next.is_finite() {
            return false;
        }
        let shrink = (1.0 - 3.0 * self.noise_sigma).clamp(0.1, 1.0);
        let optimistic = self.guard * r_lo * s_next * shrink;
        let cap_hit = history.len() >= self.cap(ctx.space.len_per_n());
        if t_best <= optimistic || cap_hit {
            self.bound = Some((t_best / optimistic - 1.0).max(0.0));
            return true;
        }
        false
    }

    fn regret_bound(&self) -> Option<f64> {
        self.bound
    }
}

/// Hill climbing with random restarts, restricted (like the legacy
/// `hill_climb`) to the space's first arithmetic mode and cache
/// preference — ported onto the selector driver so it shares the
/// measurement loop, dedup, and log with every other strategy.
#[derive(Debug, Clone)]
pub struct HillSelector {
    restarts: usize,
    rng: StdRng,
    started: usize,
    phase: HillPhase,
}

#[derive(Debug, Clone)]
enum HillPhase {
    Start,
    AwaitStart(KernelConfig),
    Climb { cur: KernelConfig, cur_time: f64 },
    Done,
}

impl HillSelector {
    /// A climber doing `restarts` random restarts with the given seed.
    pub fn new(restarts: usize, seed: u64) -> Self {
        HillSelector {
            restarts: restarts.max(1),
            rng: StdRng::seed_from_u64(seed),
            started: 0,
            phase: HillPhase::Start,
        }
    }

    fn pick(&mut self, ctx: &SelectCtx<'_>) -> KernelConfig {
        let space = ctx.space;
        KernelConfig {
            n: ctx.n,
            nb: space.nb[self.rng.random_range(0..space.nb.len())],
            looking: space.looking[self.rng.random_range(0..space.looking.len())],
            chunked: space.chunked[self.rng.random_range(0..space.chunked.len())],
            chunk_size: space.chunk_size[self.rng.random_range(0..space.chunk_size.len())],
            unroll: space.unroll[self.rng.random_range(0..space.unroll.len())],
            fast_math: space.fast_math[0],
            cache_pref: space.cache_pref[0],
        }
    }
}

impl Selector for HillSelector {
    fn name(&self) -> &'static str {
        "hill"
    }

    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<Candidate> {
        self.refine(ctx, &[])
    }

    fn refine(&mut self, ctx: &SelectCtx<'_>, history: &[Evaluation]) -> Vec<Candidate> {
        let lookup = |c: &KernelConfig| {
            history
                .iter()
                .find(|e| e.m.config == *c)
                .map(|e| e.m.time_s)
        };
        loop {
            match self.phase.clone() {
                HillPhase::Done => return Vec::new(),
                HillPhase::Start => {
                    if self.started >= self.restarts {
                        self.phase = HillPhase::Done;
                        continue;
                    }
                    self.started += 1;
                    let c = self.pick(ctx);
                    self.phase = HillPhase::AwaitStart(c);
                }
                HillPhase::AwaitStart(c) => match lookup(&c) {
                    Some(t) => {
                        self.phase = HillPhase::Climb {
                            cur: c,
                            cur_time: t,
                        };
                    }
                    None => return vec![Candidate::plain(c)],
                },
                HillPhase::Climb { cur, cur_time } => {
                    let nbrs = neighbors(ctx.space, &cur);
                    let unmeasured: Vec<Candidate> = nbrs
                        .iter()
                        .filter(|c| lookup(c).is_none())
                        .map(|c| Candidate::plain(*c))
                        .collect();
                    if !unmeasured.is_empty() {
                        return unmeasured;
                    }
                    let best = nbrs
                        .iter()
                        .filter_map(|c| lookup(c).map(|t| (*c, t)))
                        .min_by(|a, b| a.1.total_cmp(&b.1));
                    match best {
                        Some((c, t)) if t < cur_time => {
                            self.phase = HillPhase::Climb {
                                cur: c,
                                cur_time: t,
                            };
                        }
                        _ => self.phase = HillPhase::Start,
                    }
                }
            }
        }
    }
}

/// The §11 zero-measurement heuristic as a (single-candidate) selector —
/// the tail of the serving fallback chain, expressed in the same terms
/// as every other strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicSelector;

impl Selector for HeuristicSelector {
    fn name(&self) -> &'static str {
        "heuristic"
    }
    fn candidates(&mut self, ctx: &SelectCtx<'_>) -> Vec<Candidate> {
        vec![Candidate::plain(heuristic_config(ctx.n))]
    }
}

/// The strategies the CLI can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorKind {
    /// Measure the whole space (the paper's methodology).
    Exhaustive,
    /// Analytic ranking + confidence-interval early stopping.
    Analytic,
    /// Hill climbing with random restarts.
    Hill,
    /// The zero-measurement §11 heuristic.
    Heuristic,
}

impl SelectorKind {
    /// Parses a CLI selector name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "exhaustive" | "sweep" => Some(SelectorKind::Exhaustive),
            "analytic" | "model" => Some(SelectorKind::Analytic),
            "hill" | "hill-climb" => Some(SelectorKind::Hill),
            "heuristic" => Some(SelectorKind::Heuristic),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            SelectorKind::Exhaustive => "exhaustive",
            SelectorKind::Analytic => "analytic",
            SelectorKind::Hill => "hill",
            SelectorKind::Heuristic => "heuristic",
        }
    }

    /// Builds a fresh selector for one size under the sweep options.
    pub fn build(&self, opts: &SweepOptions) -> Box<dyn Selector> {
        match self {
            SelectorKind::Exhaustive => Box::new(ExhaustiveSelector),
            SelectorKind::Analytic => Box::new(AnalyticSelector::new(opts.noise_sigma)),
            SelectorKind::Hill => Box::new(HillSelector::new(4, opts.noise_seed ^ 0x5E1EC7)),
            SelectorKind::Heuristic => Box::new(HeuristicSelector),
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// The outcome of one size's search.
#[derive(Debug, Clone)]
pub struct SizeOutcome {
    /// Matrix dimension searched.
    pub n: usize,
    /// Best measurement found.
    pub best: Measurement,
    /// Evaluations consumed (fresh + resumed from a log).
    pub evaluated: usize,
    /// Evaluations measured (and logged) this run.
    pub measured_fresh: usize,
    /// The full per-size grid this search could have measured.
    pub grid_total: usize,
    /// `true` if the stopping policy fired with candidates remaining.
    pub stopped_early: bool,
    /// The strategy's regret bound at stop time, when it computes one.
    pub regret_bound: Option<f64>,
    /// Every evaluation, in measurement order.
    pub history: Vec<Evaluation>,
}

/// A multi-size search result: the selector-layer counterpart of
/// [`crate::SweepReport`].
#[derive(Debug, Clone)]
pub struct SelectionReport {
    /// Strategy that produced this report.
    pub selector: String,
    /// GPU name measured on.
    pub gpu: String,
    /// Batch size of every measurement.
    pub batch: usize,
    /// Per-size outcomes, in the order searched.
    pub outcomes: Vec<SizeOutcome>,
    /// Shared plan-cache counters.
    pub cache: CacheStats,
    /// Wall-clock seconds for the whole search.
    pub wall_s: f64,
    /// Measurements recovered from an existing log (logged runs only).
    pub resumed: usize,
    /// `Some(reason)` if a torn final log line was dropped on recovery.
    pub dropped_tail: Option<String>,
}

impl SelectionReport {
    /// Total evaluations across sizes.
    pub fn evaluated(&self) -> usize {
        self.outcomes.iter().map(|o| o.evaluated).sum()
    }

    /// Total grid size across sizes (what exhaustive would measure).
    pub fn grid_total(&self) -> usize {
        self.outcomes.iter().map(|o| o.grid_total).sum()
    }

    /// Evaluations per wall-clock second (0 when empty or untimed — never
    /// NaN or infinite).
    pub fn configs_per_sec(&self) -> f64 {
        let n = self.evaluated();
        if n == 0 || !self.wall_s.is_finite() || self.wall_s <= 0.0 {
            0.0
        } else {
            n as f64 / self.wall_s
        }
    }

    /// Every evaluation flattened into a [`Dataset`], ordered by size
    /// then canonical grid index (out-of-space configurations last).
    pub fn dataset(&self, space: &ParamSpace) -> Dataset {
        let mut measurements = Vec::new();
        for o in &self.outcomes {
            let mut ms: Vec<&Evaluation> = o.history.iter().collect();
            ms.sort_by_key(|e| space.index_of(&e.m.config).unwrap_or(usize::MAX));
            measurements.extend(ms.into_iter().map(|e| e.m.clone()));
        }
        Dataset {
            gpu: self.gpu.clone(),
            batch: self.batch,
            measurements,
        }
    }

    /// The winners as a [`DispatchTable`], stamped with this search's
    /// provenance.
    pub fn dispatch_table(&self) -> DispatchTable {
        let mut table = BTreeMap::new();
        for o in &self.outcomes {
            table.insert(o.n, o.best.config);
        }
        let regret_bound = self
            .outcomes
            .iter()
            .filter_map(|o| o.regret_bound)
            .fold(None, |acc: Option<f64>, b| {
                Some(acc.map_or(b, |a| a.max(b)))
            });
        DispatchTable {
            table,
            provenance: Some(TableProvenance {
                selector: self.selector.clone(),
                gpu: self.gpu.clone(),
                batch: self.batch,
                configs_evaluated: self.evaluated(),
                grid_total: self.grid_total(),
                regret_bound,
            }),
        }
    }
}

fn cfg_key(c: &KernelConfig) -> String {
    format!("{c}")
}

/// The sequential measurement loop shared by every strategy: dedup,
/// measure (or reuse a resumed measurement), log, consult the stopping
/// policy, refine.
fn drive(
    selector: &mut dyn Selector,
    ctx: &SelectCtx<'_>,
    opts: &SweepOptions,
    cache: &TraceCache<PlanKey>,
    mut log: Option<&mut SweepLogWriter>,
    seq_base: usize,
    resumed: &BTreeMap<usize, Measurement>,
) -> std::io::Result<SizeOutcome> {
    let mut queue: VecDeque<Candidate> = VecDeque::new();
    let mut queued: HashSet<String> = HashSet::new();
    let mut history: Vec<Evaluation> = Vec::new();
    let mut measured_fresh = 0usize;
    let mut stopped_early = false;

    for cand in selector.candidates(ctx) {
        if queued.insert(cfg_key(&cand.config)) {
            queue.push_back(cand);
        }
    }
    loop {
        if queue.is_empty() {
            let more = selector.refine(ctx, &history);
            let mut grew = false;
            for cand in more {
                if queued.insert(cfg_key(&cand.config)) {
                    queue.push_back(cand);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
            continue;
        }
        if selector.should_stop(ctx, &history, queue.make_contiguous()) {
            stopped_early = true;
            break;
        }
        let cand = queue.pop_front().expect("non-empty queue");
        let idx = ctx.space.index_of(&cand.config);
        let m = match idx.and_then(|i| resumed.get(&(seq_base + i))) {
            Some(m) => m.clone(),
            None => {
                let m = measure_opts(&cand.config, ctx.spec, opts, cache);
                measured_fresh += 1;
                if let (Some(w), Some(i)) = (log.as_deref_mut(), idx) {
                    w.append(seq_base + i, &m)?;
                }
                m
            }
        };
        history.push(Evaluation { candidate: cand, m });
    }
    let best = history
        .iter()
        .min_by(|a, b| a.m.time_s.total_cmp(&b.m.time_s))
        .map(|e| e.m.clone())
        .expect("selector proposed no candidates");
    Ok(SizeOutcome {
        n: ctx.n,
        best,
        evaluated: history.len(),
        measured_fresh,
        grid_total: ctx.space.len_per_n(),
        stopped_early,
        regret_bound: selector.regret_bound(),
        history,
    })
}

/// Runs one strategy at one size through the shared driver (no log).
pub fn run_search(
    selector: &mut dyn Selector,
    space: &ParamSpace,
    n: usize,
    spec: &GpuSpec,
    opts: &SweepOptions,
    cache: &TraceCache<PlanKey>,
) -> SizeOutcome {
    let ctx = SelectCtx {
        space,
        n,
        batch: opts.batch,
        spec,
    };
    drive(selector, &ctx, opts, cache, None, 0, &BTreeMap::new())
        .expect("un-logged search cannot fail on IO")
}

fn outcomes_from_dataset(ds: &Dataset, space: &ParamSpace) -> Vec<SizeOutcome> {
    ds.sizes()
        .into_iter()
        .map(|n| {
            let history: Vec<Evaluation> = ds
                .at_n(n)
                .map(|m| Evaluation {
                    candidate: Candidate::plain(m.config),
                    m: m.clone(),
                })
                .collect();
            let best = history
                .iter()
                .min_by(|a, b| a.m.time_s.total_cmp(&b.m.time_s))
                .map(|e| e.m.clone())
                .expect("dataset size with no measurements");
            SizeOutcome {
                n,
                best,
                evaluated: history.len(),
                measured_fresh: history.len(),
                grid_total: space.len_per_n(),
                stopped_early: false,
                regret_bound: Some(0.0),
                history,
            }
        })
        .collect()
}

/// Runs `kind` across `sizes`, sharing one plan cache. The exhaustive
/// strategy takes the parallel sweep fast path; everything else runs the
/// sequential driver per size.
pub fn run_sizes(
    kind: SelectorKind,
    space: &ParamSpace,
    sizes: &[usize],
    spec: &GpuSpec,
    opts: &SweepOptions,
    sink: &dyn ProgressSink,
) -> SelectionReport {
    if kind == SelectorKind::Exhaustive {
        let report = sweep_sizes_with(space, sizes, spec, opts, sink);
        return SelectionReport {
            selector: kind.name().into(),
            gpu: spec.name.clone(),
            batch: opts.batch,
            outcomes: outcomes_from_dataset(&report.dataset, space),
            cache: report.cache,
            wall_s: report.wall_s,
            resumed: 0,
            dropped_tail: None,
        };
    }
    let cache: TraceCache<PlanKey> = TraceCache::default();
    let start = Instant::now();
    let mut outcomes = Vec::with_capacity(sizes.len());
    for (i, &n) in sizes.iter().enumerate() {
        let mut selector = kind.build(opts);
        outcomes.push(run_search(selector.as_mut(), space, n, spec, opts, &cache));
        if opts.progress_every > 0 {
            sink.on_progress(i + 1, sizes.len());
        }
    }
    SelectionReport {
        selector: kind.name().into(),
        gpu: spec.name.clone(),
        batch: opts.batch,
        outcomes,
        cache: cache.stats(),
        wall_s: start.elapsed().as_secs_f64(),
        resumed: 0,
        dropped_tail: None,
    }
}

/// [`run_sizes`] made crash-safe on the same CRC-framed log format as the
/// exhaustive sweep: measurements append with their canonical grid `seq`,
/// an existing compatible log resumes (already-measured configurations
/// are reused, not re-measured), and the resulting file is readable by
/// `resume`, `merge`, and `verify-log` regardless of strategy.
///
/// Non-exhaustive strategies only accept [`ShardSpec::whole`] — a guided
/// search owns its whole (small) measurement set. The exhaustive strategy
/// delegates to the parallel [`sweep_sizes_logged`] path, shard included.
#[allow(clippy::too_many_arguments)]
pub fn run_sizes_logged(
    kind: SelectorKind,
    space: &ParamSpace,
    sizes: &[usize],
    spec: &GpuSpec,
    opts: &SweepOptions,
    sink: &dyn ProgressSink,
    log_path: &Path,
    shard: ShardSpec,
) -> std::io::Result<SelectionReport> {
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    if kind == SelectorKind::Exhaustive {
        let logged = sweep_sizes_logged(space, sizes, spec, opts, sink, log_path, shard)?;
        return Ok(SelectionReport {
            selector: kind.name().into(),
            gpu: spec.name.clone(),
            batch: opts.batch,
            outcomes: outcomes_from_dataset(&logged.report.dataset, space),
            cache: logged.report.cache,
            wall_s: logged.report.wall_s,
            resumed: logged.resumed,
            dropped_tail: logged.dropped_tail,
        });
    }
    if shard != ShardSpec::whole() {
        return Err(invalid(format!(
            "selector {} does not shard; use --selector exhaustive for sharded sweeps",
            kind.name()
        )));
    }
    let grid = grid_configs(space, sizes);
    let header = SweepLogHeader {
        format: LOG_FORMAT.into(),
        version: LOG_VERSION,
        gpu: spec.name.clone(),
        batch: opts.batch,
        sizes: sizes.to_vec(),
        space: space.clone(),
        noise_sigma: opts.noise_sigma,
        noise_seed: opts.noise_seed,
        shard,
        total: grid.len(),
    };
    let mut resumed_map: BTreeMap<usize, Measurement> = BTreeMap::new();
    let mut dropped_tail = None;
    let mut writer = if log_path.exists() {
        let log = SweepLog::read(log_path, true)?;
        header.compatible_with(&log.header).map_err(|e| {
            invalid(format!(
                "{}: log belongs to a different sweep: {e}",
                log_path.display()
            ))
        })?;
        if log.header.shard != ShardSpec::whole() {
            return Err(invalid(format!(
                "{}: log covers shard {}, guided search owns the whole grid",
                log_path.display(),
                log.header.shard
            )));
        }
        dropped_tail = log.dropped_tail.clone();
        if dropped_tail.is_some() {
            let f = std::fs::OpenOptions::new().write(true).open(log_path)?;
            f.set_len(log.valid_len)?;
            f.sync_data()?;
        }
        for e in log.entries {
            resumed_map.insert(e.seq, e.m);
        }
        SweepLogWriter::open_append(log_path, opts.log_fsync)?
    } else {
        SweepLogWriter::create(log_path, &header, opts.log_fsync)?
    };
    let cache: TraceCache<PlanKey> = TraceCache::default();
    let start = Instant::now();
    let mut outcomes = Vec::with_capacity(sizes.len());
    let mut resumed_used = 0usize;
    for (i, &n) in sizes.iter().enumerate() {
        let seq_base = i * space.len_per_n();
        let mut selector = kind.build(opts);
        let ctx = SelectCtx {
            space,
            n,
            batch: opts.batch,
            spec,
        };
        let outcome = drive(
            selector.as_mut(),
            &ctx,
            opts,
            &cache,
            Some(&mut writer),
            seq_base,
            &resumed_map,
        )?;
        resumed_used += outcome.evaluated - outcome.measured_fresh;
        outcomes.push(outcome);
        if opts.progress_every > 0 {
            sink.on_progress(i + 1, sizes.len());
        }
    }
    Ok(SelectionReport {
        selector: kind.name().into(),
        gpu: spec.name.clone(),
        batch: opts.batch,
        outcomes,
        cache: cache.stats(),
        wall_s: start.elapsed().as_secs_f64(),
        resumed: resumed_used,
        dropped_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best::BestTable;
    use crate::runner::{sweep, SilentProgress};

    fn p100_opts(batch: usize) -> SweepOptions {
        SweepOptions {
            batch,
            ..Default::default()
        }
    }

    #[test]
    fn exhaustive_selector_measures_the_whole_grid() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let opts = p100_opts(1024);
        let cache = TraceCache::default();
        let mut sel = ExhaustiveSelector;
        let out = run_search(&mut sel, &space, 12, &spec, &opts, &cache);
        assert_eq!(out.evaluated, space.len_per_n());
        assert!(!out.stopped_early);
        // Tie-breaking may differ from BestTable (with full unroll many
        // configurations time identically), but the winning time must not.
        let ds = sweep(&space, 12, &spec, &opts);
        let best = BestTable::new(&ds).best(12).unwrap();
        assert_eq!(out.best.time_s, best.time_s);
        assert_eq!(out.best.gflops, best.gflops);
    }

    #[test]
    fn analytic_selector_stops_early_and_stays_close() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let opts = p100_opts(4096);
        let cache = TraceCache::default();
        for n in [8usize, 16, 32] {
            let mut sel = AnalyticSelector::new(0.0);
            let out = run_search(&mut sel, &space, n, &spec, &opts, &cache);
            assert!(
                out.evaluated <= space.len_per_n() / 4,
                "n={n}: evaluated {} of {}",
                out.evaluated,
                space.len_per_n()
            );
            let ds = sweep(&space, n, &spec, &opts);
            let best = BestTable::new(&ds).best(n).unwrap();
            assert!(
                out.best.time_s <= 1.05 * best.time_s,
                "n={n}: picked {} vs best {}",
                out.best.time_s,
                best.time_s
            );
        }
    }

    #[test]
    fn heuristic_selector_is_single_shot() {
        let space = ParamSpace::paper();
        let spec = GpuSpec::p100();
        let opts = p100_opts(1024);
        let cache = TraceCache::default();
        let mut sel = HeuristicSelector;
        let out = run_search(&mut sel, &space, 24, &spec, &opts, &cache);
        assert_eq!(out.evaluated, 1);
        assert_eq!(out.best.config, heuristic_config(24));
    }

    #[test]
    fn hill_selector_dedups_across_restarts() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let opts = p100_opts(1024);
        let cache = TraceCache::default();
        let mut sel = HillSelector::new(200, 3);
        let out = run_search(&mut sel, &space, 16, &spec, &opts, &cache);
        let restricted = space.nb.len()
            * space.looking.len()
            * space.chunked.len()
            * space.chunk_size.len()
            * space.unroll.len();
        assert!(
            out.evaluated <= restricted,
            "evaluated {} > {restricted} distinct restricted configs",
            out.evaluated
        );
    }

    #[test]
    fn selector_kind_parses() {
        assert_eq!(
            SelectorKind::parse("analytic"),
            Some(SelectorKind::Analytic)
        );
        assert_eq!(
            SelectorKind::parse("EXHAUSTIVE"),
            Some(SelectorKind::Exhaustive)
        );
        assert_eq!(SelectorKind::parse("hill"), Some(SelectorKind::Hill));
        assert_eq!(
            SelectorKind::parse("heuristic"),
            Some(SelectorKind::Heuristic)
        );
        assert_eq!(SelectorKind::parse("bogus"), None);
    }

    #[test]
    fn run_sizes_produces_a_provenance_stamped_table() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let report = run_sizes(
            SelectorKind::Analytic,
            &space,
            &[8, 16],
            &spec,
            &p100_opts(2048),
            &SilentProgress,
        );
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.evaluated() < report.grid_total());
        let table = report.dispatch_table();
        let prov = table.provenance.as_ref().unwrap();
        assert_eq!(prov.selector, "analytic");
        assert_eq!(prov.configs_evaluated, report.evaluated());
        assert!(table.config_for(8).is_some());
        // The flattened dataset carries every evaluation.
        let ds = report.dataset(&space);
        assert_eq!(ds.measurements.len(), report.evaluated());
    }

    #[test]
    fn configs_per_sec_is_guarded() {
        let report = SelectionReport {
            selector: "analytic".into(),
            gpu: "test".into(),
            batch: 0,
            outcomes: Vec::new(),
            cache: CacheStats::default(),
            wall_s: 0.0,
            resumed: 0,
            dropped_tail: None,
        };
        assert_eq!(report.configs_per_sec(), 0.0);
        let report = SelectionReport {
            wall_s: f64::NAN,
            ..report
        };
        assert_eq!(report.configs_per_sec(), 0.0);
    }
}
