//! Cross-layer acceptance tests for the selector layer.
//!
//! Three contracts, straight from the roadmap item that introduced the
//! pluggable selectors: the analytic prior may only ever propose
//! configurations inside the parameter space it was asked to rank (a
//! candidate outside the space could never be logged or resumed); the
//! early-stopped analytic search must land within 5% of the exhaustive
//! winner while measuring a strict subset of the grid; and a guided
//! search writes the same CRC-framed sweep log the exhaustive sweep
//! does, so `resume`/`verify-log` semantics carry over unchanged.

use ibcf_autotune::{
    rank_candidates, run_sizes, run_sizes_logged, BestTable, ParamSpace, SelectorKind, ShardSpec,
    SilentProgress, SweepLog, SweepOptions,
};
use ibcf_gpu_sim::GpuSpec;
use proptest::prelude::*;
use std::path::PathBuf;

fn opts(batch: usize) -> SweepOptions {
    SweepOptions {
        batch,
        progress_every: 0,
        ..Default::default()
    }
}

fn tmpfile(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ibcf_select_regret_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.log"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every candidate the analytic prior ranks — for any size, any GPU
    /// preset, any batch — is a member of the space it ranked, is
    /// structurally valid, and the ranking covers the whole per-size grid
    /// exactly once.
    #[test]
    fn analytic_candidates_stay_inside_the_paper_space(
        n in 1..=64usize,
        spec_idx in 0..4usize,
        batch_pow in 8..=14u32,
    ) {
        let space = ParamSpace::paper();
        let spec = &GpuSpec::presets()[spec_idx];
        let batch = 1usize << batch_pow;
        let ranked = rank_candidates(&space, n, batch, spec);
        prop_assert_eq!(ranked.len(), space.len_per_n());
        let mut seen = std::collections::HashSet::new();
        for s in &ranked {
            prop_assert!(space.contains(&s.config), "{} not in space", s.config);
            s.config.validate().map_err(|e| {
                TestCaseError::fail(format!("{}: {e}", s.config))
            })?;
            prop_assert_eq!(s.config.n, n);
            prop_assert!(s.time_s.is_finite() && s.time_s > 0.0);
            prop_assert!(seen.insert(space.index_of(&s.config).unwrap()), "duplicate candidate");
        }
    }
}

/// The headline regret contract on the quick space: at every size the
/// analytic early-stopped search must sit within 5% of the exhaustive
/// winner's time while evaluating strictly fewer configurations.
#[test]
fn analytic_search_is_within_five_percent_of_exhaustive() {
    let space = ParamSpace::quick();
    let spec = GpuSpec::p100();
    let sizes = [8usize, 16, 24, 32];
    let o = opts(4096);

    let exhaustive = run_sizes(
        SelectorKind::Exhaustive,
        &space,
        &sizes,
        &spec,
        &o,
        &SilentProgress,
    );
    let exhaustive_ds = exhaustive.dataset(&space);
    let truth = BestTable::new(&exhaustive_ds);

    let analytic = run_sizes(
        SelectorKind::Analytic,
        &space,
        &sizes,
        &spec,
        &o,
        &SilentProgress,
    );
    assert!(
        analytic.evaluated() < exhaustive.evaluated(),
        "guided search measured the whole grid ({} of {})",
        analytic.evaluated(),
        exhaustive.evaluated()
    );
    for out in &analytic.outcomes {
        let best = truth.best(out.n).expect("exhaustive covers every size");
        assert!(
            out.best.time_s <= 1.05 * best.time_s,
            "n={}: analytic pick {:.3e}s vs exhaustive best {:.3e}s (regret {:.1}%)",
            out.n,
            out.best.time_s,
            best.time_s,
            (out.best.time_s / best.time_s - 1.0) * 100.0
        );
        assert!(
            out.evaluated <= out.grid_total,
            "n={}: evaluated more than the grid",
            out.n
        );
    }
}

/// A guided search writes the same crash-safe log the exhaustive sweep
/// writes: the log validates, every sequence number is a canonical grid
/// index, and re-running against the same log resumes every measurement
/// instead of re-measuring.
#[test]
fn analytic_log_is_resumable_and_verifiable() {
    let space = ParamSpace::quick();
    let spec = GpuSpec::p100();
    let sizes = [8usize, 16];
    let o = opts(2048);
    let path = tmpfile("analytic");
    std::fs::remove_file(&path).ok();

    let first = run_sizes_logged(
        SelectorKind::Analytic,
        &space,
        &sizes,
        &spec,
        &o,
        &SilentProgress,
        &path,
        ShardSpec::whole(),
    )
    .unwrap();
    assert_eq!(first.resumed, 0);
    assert!(first.evaluated() > 0);

    // The log a guided selector writes is a valid sweep log.
    let log = SweepLog::read(&path, false).unwrap();
    log.header.validate().unwrap();
    assert_eq!(log.dropped_tail, None);
    assert_eq!(log.duplicates, 0);
    assert_eq!(log.entries.len(), first.evaluated());
    let grid = sizes.len() * space.len_per_n();
    for e in &log.entries {
        assert!(e.seq < grid, "seq {} outside grid {grid}", e.seq);
    }

    // A second run against the same log measures nothing fresh and lands
    // on the same winners.
    let second = run_sizes_logged(
        SelectorKind::Analytic,
        &space,
        &sizes,
        &spec,
        &o,
        &SilentProgress,
        &path,
        ShardSpec::whole(),
    )
    .unwrap();
    assert_eq!(second.resumed, first.evaluated());
    for out in &second.outcomes {
        assert_eq!(out.measured_fresh, 0, "n={} re-measured", out.n);
        let was = first
            .outcomes
            .iter()
            .find(|o| o.n == out.n)
            .expect("same sizes");
        assert_eq!(out.best.config, was.best.config, "n={}", out.n);
        assert_eq!(out.best.time_s, was.best.time_s, "n={}", out.n);
    }
    std::fs::remove_file(&path).ok();
}
