//! The two-phase refactor's contract: `price(build_plan(trace), ctx)` is
//! bitwise-identical to the pre-refactor fused timing pass for every
//! kernel configuration. The reference below is a verbatim copy of the
//! fused `time_from_trace` as it stood before the split, rebuilt from the
//! simulator's public pieces; the tests drive both pipelines over the
//! quick parameter space and compare full [`KernelTiming`] reports.

use ibcf_autotune::ParamSpace;
use ibcf_gpu_sim::cache::Cache;
use ibcf_gpu_sim::coalesce::coalesce;
use ibcf_gpu_sim::dram::RowBufferModel;
use ibcf_gpu_sim::{
    apply_register_reuse, occupancy, trace_warp, Bottleneck, GpuSpec, KernelStatics, KernelTiming,
    LaunchConfig, OpCounts, ThreadKernel, TraceCache, WarpTrace,
};
use ibcf_kernels::{time_config, time_config_cached, InterleavedCholesky, KernelConfig, PlanKey};
use proptest::prelude::*;

/// Per-op issue pricing, copied from the pre-refactor `compute_cycles`.
fn fused_compute_cycles(ops: &OpCounts, spec: &GpuSpec, fast_math: bool) -> f64 {
    let c = &spec.costs;
    ops.fma_class as f64 * c.fma
        + ops.div as f64 * c.div(fast_math)
        + ops.sqrt as f64 * c.sqrt(fast_math)
        + ops.rcp as f64 * c.rcp(fast_math)
        + ops.iops as f64 * c.iop
}

/// The pre-refactor fused `time_from_trace`, verbatim: register reuse,
/// coalescing, L2/DRAM filtering, spills, i-cache, arithmetic pricing and
/// occupancy scaling in one pass, in the original floating-point order.
fn fused_time_from_trace(
    trace: &WarpTrace,
    statics: &KernelStatics,
    launch: LaunchConfig,
    spec: &GpuSpec,
    fast_math: bool,
) -> KernelTiming {
    let warps_total = (launch.total_threads() / spec.warp_size as usize) as f64;

    let (capacity, dse) = (statics.reg_reuse_capacity, statics.dead_store_elim);
    let reused = apply_register_reuse(trace.accesses.clone(), capacity, dse);

    let occ = occupancy(
        spec,
        launch.block,
        statics.regs_per_thread,
        statics.shared_bytes_per_block,
    );
    let blocks_per_wave = (occ.blocks_per_sm as u64) * spec.sms as u64;
    let waves = (launch.grid as u64).div_ceil(blocks_per_wave);
    let block_rounds = (launch.grid as u64).div_ceil(spec.sms as u64);
    let utilization = launch.grid as f64 / (block_rounds * spec.sms as u64) as f64;

    let active_warps_gpu = (occ.warps_per_sm as u64 * spec.sms as u64)
        .min(warps_total as u64)
        .max(1);
    let l2_share = (spec.l2_bytes / active_warps_gpu).max(spec.l2_line_bytes as u64);
    let mut l2 = Cache::new(l2_share, spec.l2_line_bytes, spec.l2_ways.min(4));
    let mut rows = RowBufferModel::new(spec.dram_row_bytes, spec.dram_open_rows);

    let mut lsu_cycles = 0.0f64;
    let mut dram_sectors = 0u64;
    let mut total_transactions = 0u64;
    for access in &reused.kept {
        let c = coalesce(access, 4, spec.line_bytes, spec.sector_bytes);
        total_transactions += c.transactions as u64;
        lsu_cycles += c.transactions as f64 * spec.costs.lsu_per_transaction;
        let mut lines: Vec<u64> = access
            .addrs
            .iter()
            .map(|&a| (a as u64 * 4) / spec.line_bytes as u64)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        let sectors_per_line = (c.sectors as f64 / c.transactions.max(1) as f64).max(1.0);
        for line in lines {
            let byte = line * spec.line_bytes as u64;
            let hit = l2.access(byte);
            if !hit || access.store {
                dram_sectors += sectors_per_line.round() as u64;
                rows.access(byte);
            }
        }
    }

    let max_regs = spec.max_regs_per_thread;
    let spill_regs = statics.regs_per_thread.saturating_sub(max_regs) as u64;
    let spill_accesses_per_warp = (spill_regs as f64 * spec.spill_reuse_factor * 2.0).round();
    lsu_cycles += spill_accesses_per_warp * spec.costs.lsu_per_transaction;
    let spill_bytes_per_warp = spill_accesses_per_warp * 32.0 * 4.0;
    let spill_bytes = (spill_bytes_per_warp * warps_total) as u64;

    let code_bytes = statics.static_instrs * spec.instr_bytes as u64;
    let icache_penalty = if code_bytes > spec.icache_bytes as u64 {
        1.0 + spec.icache_beta * (code_bytes as f64 / spec.icache_bytes as f64).log2()
    } else {
        1.0
    };

    let comp_cycles = fused_compute_cycles(&trace.ops, spec, fast_math) * icache_penalty;
    let lsu_cycles = lsu_cycles * icache_penalty;

    let clock = spec.clock_hz();
    let sms = spec.sms as f64;
    let compute_time_s = comp_cycles * warps_total / sms / clock / utilization;
    let lsu_time_s = lsu_cycles * warps_total / sms / clock / utilization;

    let dram_bytes =
        dram_sectors as f64 * spec.sector_bytes as f64 * warps_total + spill_bytes as f64;
    let dram_eff = rows.efficiency(spec.dram_row_miss_penalty);
    let dram_time_s = dram_bytes / (spec.dram_gbps * 1e9 * dram_eff);

    let (time_s, bottleneck) = if compute_time_s >= lsu_time_s && compute_time_s >= dram_time_s {
        (compute_time_s, Bottleneck::Compute)
    } else if lsu_time_s >= dram_time_s {
        (lsu_time_s, Bottleneck::Lsu)
    } else {
        (dram_time_s, Bottleneck::Dram)
    };

    KernelTiming {
        time_s,
        compute_time_s,
        lsu_time_s,
        dram_time_s,
        bottleneck,
        dram_bytes: dram_bytes as u64,
        row_hit_rate: rows.hit_rate(),
        l2_hit_rate: l2.hit_rate(),
        transactions_per_access: if reused.kept.is_empty() {
            0.0
        } else {
            total_transactions as f64 / reused.kept.len() as f64
        },
        reg_reuse_eliminated_loads: reused.eliminated_loads,
        eliminated_stores: reused.eliminated_stores,
        spill_bytes,
        code_bytes,
        icache_penalty,
        occupancy: occ,
        waves,
        utilization,
        flops_per_thread: trace.ops.flops(),
    }
}

/// Times `config` through the verbatim fused reference.
fn fused_time_config(config: &KernelConfig, batch: usize, spec: &GpuSpec) -> KernelTiming {
    let kernel = InterleavedCholesky::new(*config, batch);
    let launch = config.launch(batch);
    let trace = trace_warp(&kernel, launch, 0, 0);
    let statics = kernel.statics();
    fused_time_from_trace(&trace, &statics, launch, spec, config.fast_math)
}

/// `KernelTiming` does not implement `PartialEq`; the `Debug` rendering
/// prints every `f64` in shortest-roundtrip form, so equal strings mean
/// bitwise-equal reports (modulo the sign of zero, which never occurs in
/// these non-negative quantities).
fn render(t: &KernelTiming) -> String {
    format!("{t:?}")
}

fn quick_configs() -> Vec<KernelConfig> {
    let space = ParamSpace::quick();
    let mut all = Vec::new();
    for n in [8, 16, 32] {
        all.extend(space.configs(n));
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `time_config` (now plan + price) matches the pre-refactor fused
    /// pass bitwise for randomly drawn quick-space configurations, GPUs
    /// and batch sizes.
    #[test]
    fn split_pipeline_matches_fused_reference(
        idx in 0usize..3456,
        batch in prop::sample::select(vec![512usize, 4096, 16_384]),
        v100 in any::<bool>(),
    ) {
        let configs = quick_configs();
        let config = configs[idx % configs.len()];
        let spec = if v100 { GpuSpec::v100() } else { GpuSpec::p100() };
        let split = time_config(&config, batch, &spec);
        let fused = fused_time_config(&config, batch, &spec);
        prop_assert_eq!(render(&split), render(&fused));
    }

    /// Cache hits price from a stored plan; the result must be identical
    /// to both a cache miss and the fused reference.
    #[test]
    fn cached_path_matches_fused_reference(
        idx in 0usize..3456,
        batch in prop::sample::select(vec![1024usize, 8192]),
    ) {
        let configs = quick_configs();
        let config = configs[idx % configs.len()];
        let spec = GpuSpec::p100();
        let cache: TraceCache<PlanKey> = TraceCache::default();
        let miss = time_config_cached(&config, batch, &spec, &cache);
        let hit = time_config_cached(&config, batch, &spec, &cache);
        let fused = fused_time_config(&config, batch, &spec);
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);
        prop_assert_eq!(render(&miss), render(&hit));
        prop_assert_eq!(render(&hit), render(&fused));
    }
}

/// Exhaustive sweep of the whole quick space at one size: no sampled
/// blind spots at the size the determinism tests pin.
#[test]
fn exhaustive_quick_space_matches_fused_at_n16() {
    let spec = GpuSpec::p100();
    for config in ParamSpace::quick().configs(16) {
        let split = time_config(&config, 4096, &spec);
        let fused = fused_time_config(&config, 4096, &spec);
        assert_eq!(render(&split), render(&fused), "mismatch for {config}");
    }
}
