//! End-to-end guarantees of the crash-safe sweep log: a sweep
//! interrupted at an arbitrary point and resumed produces a dataset
//! bitwise-identical to an uninterrupted run, and merging shard logs
//! equals the unsharded sweep.

use ibcf_autotune::{
    merge_logs, sweep_sizes_logged, sweep_sizes_with, ParamSpace, ShardSpec, SilentProgress,
    SweepOptions,
};
use ibcf_gpu_sim::GpuSpec;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ibcf_sweeplog_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn opts(noise_sigma: f64) -> SweepOptions {
    SweepOptions {
        batch: 1024,
        noise_sigma,
        noise_seed: 11,
        // Unit tests hammer the log; skip per-line fsync for speed. The
        // recovery semantics under test are unaffected.
        log_fsync: false,
        ..Default::default()
    }
}

fn jsonl_bytes(ds: &ibcf_autotune::Dataset, path: &PathBuf) -> Vec<u8> {
    ds.save_jsonl(path).unwrap();
    std::fs::read(path).unwrap()
}

#[test]
fn interrupted_resume_is_bitwise_identical_to_uninterrupted() {
    for sigma in [0.0, 0.05] {
        let dir = tmpdir(&format!("resume{}", (sigma * 100.0) as u32));
        let space = ParamSpace::quick();
        let sizes = [8usize, 16];
        let spec = GpuSpec::p100();
        let o = opts(sigma);

        // Reference: plain in-memory sweep (no log at all).
        let plain = sweep_sizes_with(&space, &sizes, &spec, &o, &SilentProgress).dataset;

        // Uninterrupted logged sweep.
        let full_log = dir.join("full.log");
        std::fs::remove_file(&full_log).ok();
        let full = sweep_sizes_logged(
            &space,
            &sizes,
            &spec,
            &o,
            &SilentProgress,
            &full_log,
            ShardSpec::whole(),
        )
        .unwrap();
        assert_eq!(full.resumed, 0);
        assert_eq!(full.measured, plain.measurements.len());

        // Interrupt "at an arbitrary point": keep the header plus a
        // prefix of the appended lines, then tear the next line in half
        // (exactly what SIGKILL mid-append leaves behind).
        let text = std::fs::read_to_string(&full_log).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let cut = 1 + (lines.len() - 1) / 3;
        let half = &lines[cut][..lines[cut].len() / 2];
        let torn = format!("{}\n{half}", lines[..cut].join("\n"));
        let part_log = dir.join("part.log");
        std::fs::write(&part_log, torn).unwrap();

        let resumed = sweep_sizes_logged(
            &space,
            &sizes,
            &spec,
            &o,
            &SilentProgress,
            &part_log,
            ShardSpec::whole(),
        )
        .unwrap();
        assert_eq!(resumed.resumed, cut - 1);
        assert_eq!(
            resumed.resumed + resumed.measured,
            plain.measurements.len(),
            "resume must cover exactly the remainder"
        );
        assert!(resumed.dropped_tail.is_some(), "torn line must be reported");

        // All three datasets must serialize to identical bytes.
        let a = jsonl_bytes(&plain, &dir.join("plain.jsonl"));
        let b = jsonl_bytes(&full.report.dataset, &dir.join("full.jsonl"));
        let c = jsonl_bytes(&resumed.report.dataset, &dir.join("resumed.jsonl"));
        assert_eq!(a, b, "sigma={sigma}: logged sweep differs from plain");
        assert_eq!(a, c, "sigma={sigma}: resumed sweep differs from plain");

        // Resuming a complete log measures nothing and still agrees.
        let again = sweep_sizes_logged(
            &space,
            &sizes,
            &spec,
            &o,
            &SilentProgress,
            &part_log,
            ShardSpec::whole(),
        )
        .unwrap();
        assert_eq!(again.measured, 0);
        assert_eq!(again.resumed, plain.measurements.len());
        let d = jsonl_bytes(&again.report.dataset, &dir.join("again.jsonl"));
        assert_eq!(a, d);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn merged_shards_equal_the_unsharded_sweep() {
    let dir = tmpdir("shards");
    let space = ParamSpace::quick();
    let sizes = [8usize, 16];
    let spec = GpuSpec::p100();
    let o = opts(0.02);

    let plain = sweep_sizes_with(&space, &sizes, &spec, &o, &SilentProgress).dataset;

    let k = 3;
    let mut paths = Vec::new();
    let mut covered = 0usize;
    for i in 0..k {
        let shard = ShardSpec::new(i, k).unwrap();
        let p = dir.join(format!("shard{i}.log"));
        std::fs::remove_file(&p).ok();
        let r = sweep_sizes_logged(&space, &sizes, &spec, &o, &SilentProgress, &p, shard).unwrap();
        assert_eq!(r.measured, shard.owned_of(plain.measurements.len()));
        covered += r.measured;
        paths.push(p);
    }
    assert_eq!(covered, plain.measurements.len());

    // Partial union (missing one shard) is rejected unless allowed.
    let err = merge_logs(&paths[..2], false).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let (partial, rep) = merge_logs(&paths[..2], true).unwrap();
    assert_eq!(partial.measurements.len(), rep.measured);
    assert!(rep.measured < rep.total);

    // The full merge equals the unsharded sweep, bitwise.
    let (merged, rep) = merge_logs(&paths, false).unwrap();
    assert_eq!(rep.shards, k);
    assert_eq!(rep.measured, rep.total);
    assert_eq!(rep.duplicates, 0);
    let a = jsonl_bytes(&plain, &dir.join("plain.jsonl"));
    let b = jsonl_bytes(&merged, &dir.join("merged.jsonl"));
    assert_eq!(a, b, "merged shards differ from the unsharded sweep");

    // Merging a shard with itself dedupes; a doctored log conflicts.
    let twice = vec![
        paths[0].clone(),
        paths[0].clone(),
        paths[1].clone(),
        paths[2].clone(),
    ];
    let (_, rep) = merge_logs(&twice, false).unwrap();
    assert!(rep.duplicates > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_mismatched_sweeps() {
    let dir = tmpdir("mismatch");
    let space = ParamSpace::quick();
    let spec = GpuSpec::p100();
    let o = opts(0.0);
    let log = dir.join("a.log");
    std::fs::remove_file(&log).ok();
    sweep_sizes_logged(
        &space,
        &[8],
        &spec,
        &o,
        &SilentProgress,
        &log,
        ShardSpec::whole(),
    )
    .unwrap();

    // Different batch.
    let other = SweepOptions {
        batch: 2048,
        ..opts(0.0)
    };
    let err = sweep_sizes_logged(
        &space,
        &[8],
        &spec,
        &other,
        &SilentProgress,
        &log,
        ShardSpec::whole(),
    )
    .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // Different sizes.
    assert!(sweep_sizes_logged(
        &space,
        &[8, 16],
        &spec,
        &o,
        &SilentProgress,
        &log,
        ShardSpec::whole(),
    )
    .is_err());

    // Different shard.
    assert!(sweep_sizes_logged(
        &space,
        &[8],
        &spec,
        &o,
        &SilentProgress,
        &log,
        ShardSpec::new(0, 2).unwrap(),
    )
    .is_err());

    // Different space.
    assert!(sweep_sizes_logged(
        &ParamSpace::paper(),
        &[8],
        &spec,
        &o,
        &SilentProgress,
        &log,
        ShardSpec::whole(),
    )
    .is_err());

    // Different noise model.
    assert!(sweep_sizes_logged(
        &space,
        &[8],
        &spec,
        &opts(0.5),
        &SilentProgress,
        &log,
        ShardSpec::whole(),
    )
    .is_err());
    std::fs::remove_dir_all(&dir).ok();
}
