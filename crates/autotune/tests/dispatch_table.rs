//! `DispatchTable::save`/`load` round-trip property tests plus
//! corrupt-file rejection — the same hardening contract as
//! `Dataset::load_jsonl`: a dispatch table that loads at all must be
//! exactly the table that was saved, and anything mangled is an
//! `InvalidData` error rather than a silently defaulted entry (a wrong
//! table would mis-dispatch every request the serving layer routes
//! through it).

use ibcf_autotune::heuristics::heuristic_config;
use ibcf_autotune::{DispatchTable, ParamSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::ErrorKind;
use std::path::PathBuf;

fn tmpfile(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ibcf_dispatch_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}_{case}.jsonl"))
}

/// A random valid table: 0..12 distinct sizes, each with a configuration
/// drawn uniformly from the paper's full parameter space.
fn random_table(seed: u64) -> DispatchTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = ParamSpace::paper();
    let mut table = DispatchTable::default();
    let sizes = rng.random_range(0..12usize);
    for _ in 0..sizes {
        let n = rng.random_range(1..=64usize);
        let configs = space.configs(n);
        let config = configs[rng.random_range(0..configs.len())];
        table.table.insert(n, config);
    }
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn save_load_round_trips_any_table(seed in any::<u64>()) {
        let table = random_table(seed);
        let path = tmpfile("rt", seed);
        table.save(&path).unwrap();
        let back = DispatchTable::load(&path).unwrap();
        prop_assert_eq!(back.table.len(), table.table.len());
        for (n, config) in &table.table {
            prop_assert_eq!(back.table.get(n), Some(config));
        }
        // The loaded table dispatches identically everywhere, swept or not.
        for n in 1..=80usize {
            prop_assert_eq!(back.config_for(n), table.config_for(n));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_or_garbled_files_are_rejected(seed in any::<u64>()) {
        let mut table = random_table(seed);
        table.table.insert(16, heuristic_config(16));
        let path = tmpfile("corrupt", seed);
        table.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // Cut mid-line: the torn JSON must not parse.
        let cut = text.len() - text.len().min(9);
        std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
        let err = DispatchTable::load(&path).unwrap_err();
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);

        // Arbitrary garbage is no better.
        std::fs::write(&path, b"not json at all\n{\"n\": oops}\n").unwrap();
        let err = DispatchTable::load(&path).unwrap_err();
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn semantic_corruption_is_rejected() {
    let dir = std::env::temp_dir().join(format!("ibcf_dispatch_sem_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("d.jsonl");
    let mut table = DispatchTable::default();
    table.table.insert(16, heuristic_config(16));
    table.save(&path).unwrap();
    let good = std::fs::read_to_string(&path).unwrap();

    // A structurally invalid configuration (chunk size not a multiple of
    // the warp size) must be rejected, not dispatched.
    let bad = good.replace("\"chunk_size\":64", "\"chunk_size\":48");
    assert_ne!(bad, good, "fixture expects chunk_size 64 in the heuristic");
    std::fs::write(&path, &bad).unwrap();
    assert_eq!(
        DispatchTable::load(&path).unwrap_err().kind(),
        ErrorKind::InvalidData
    );

    // An entry whose key disagrees with its configuration's `n` (replace
    // only the outer key; the config keeps n = 16).
    let bad = good.replacen("{\"n\":16,\"config\"", "{\"n\":24,\"config\"", 1);
    assert_ne!(bad, good);
    std::fs::write(&path, &bad).unwrap();
    assert_eq!(
        DispatchTable::load(&path).unwrap_err().kind(),
        ErrorKind::InvalidData
    );

    // A duplicated size: two winners for one n is a merge bug upstream.
    std::fs::write(&path, format!("{good}{good}")).unwrap();
    assert_eq!(
        DispatchTable::load(&path).unwrap_err().kind(),
        ErrorKind::InvalidData
    );

    // Missing `n` key entirely.
    let bad = good.replacen("{\"n\":16,\"config\"", "{\"config\"", 1);
    std::fs::write(&path, &bad).unwrap();
    assert_eq!(
        DispatchTable::load(&path).unwrap_err().kind(),
        ErrorKind::InvalidData
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pre_provenance_fixture_still_loads() {
    // A table saved before provenance existed (checked-in fixture, entry
    // lines only) must load unchanged, with `provenance = None` — the
    // backward-compat contract of the provenance header line.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/dispatch_v0.jsonl");
    let table = DispatchTable::load(&path).unwrap();
    assert!(table.provenance.is_none());
    assert_eq!(table.len(), 3);
    for n in [8usize, 16, 24] {
        let c = table
            .table
            .get(&n)
            .unwrap_or_else(|| panic!("missing n={n}"));
        assert_eq!(c.n, n);
        c.validate().unwrap();
    }
    // The fixture exercises both variants of every enum axis the v0
    // format serialized.
    assert!(table.table[&8].unroll == ibcf_kernels::Unroll::Full);
    assert!(table.table[&24].fast_math && !table.table[&24].chunked);

    // Saving a provenance-free table reproduces the v0 byte format
    // exactly, so old readers keep working on new writers too.
    let out = tmpfile("v0_resave", 0);
    table.save(&out).unwrap();
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        std::fs::read_to_string(&path).unwrap()
    );
    std::fs::remove_file(&out).ok();
}

#[test]
fn provenance_round_trips_and_rejects_misplacement() {
    use ibcf_autotune::TableProvenance;
    let mut table = random_table(7);
    table.table.insert(16, heuristic_config(16));
    table.provenance = Some(TableProvenance {
        selector: "analytic".into(),
        gpu: "NVIDIA P100 (Pascal)".into(),
        batch: 16_384,
        configs_evaluated: 96,
        grid_total: 960,
        regret_bound: Some(0.031),
    });
    let path = tmpfile("prov", 1);
    table.save(&path).unwrap();
    let back = DispatchTable::load(&path).unwrap();
    assert_eq!(back.provenance, table.provenance);
    assert_eq!(back.table, table.table);

    // The provenance line anywhere but first — or duplicated — is
    // corruption, not data.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].contains("provenance"));
    lines.rotate_left(1);
    std::fs::write(&path, lines.join("\n")).unwrap();
    assert_eq!(
        DispatchTable::load(&path).unwrap_err().kind(),
        ErrorKind::InvalidData
    );
    let first = text.lines().next().unwrap();
    std::fs::write(&path, format!("{first}\n{text}")).unwrap();
    assert_eq!(
        DispatchTable::load(&path).unwrap_err().kind(),
        ErrorKind::InvalidData
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn heuristic_fallback_is_valid_at_every_size() {
    for n in 1..=64 {
        let c = heuristic_config(n);
        assert_eq!(c.n, n);
        c.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert!(c.chunked, "heuristic prefers the chunked interleave");
    }
}
