//! Deterministic fault injection for chaos testing the service.
//!
//! A [`FaultPlan`] is a pure function of a single `u64` seed: it expands
//! into a set of rules, each bound to an injection [`FaultSite`] inside
//! the service (the former's drain loop, the worker's batch execution,
//! the per-connection read and write paths). Every time execution passes
//! a site it ticks that site's logical clock — an atomic event counter —
//! and the rules fire on fixed residues of that clock, capped at a
//! per-rule budget. Two chaos runs with the same seed therefore inject
//! the same faults at the same logical positions, even though OS thread
//! scheduling may shuffle which *request* lands on a given position; the
//! invariants a chaos run asserts (exactly one reply per request, no
//! process exit) are scheduling-independent by design.
//!
//! The production hot path carries a [`FaultHook`], which is an
//! `Option<Arc<..>>` underneath: disabled (the default everywhere) it is
//! a `None` check — one predictable branch, no atomics touched — so the
//! serve path pays nothing for the chaos machinery it enables.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where in the service a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The former's drain loop, once per drain pass (queue stalls).
    FormerDrain = 0,
    /// A worker about to execute one formed batch (panics, slow batches).
    WorkerBatch = 1,
    /// A connection reader about to read the next frame (drops).
    ConnRead = 2,
    /// A connection writer about to write one reply frame (drops,
    /// corruption, truncation).
    ConnWrite = 3,
    /// The router's health loop visiting one shard slot (whole-shard
    /// kills). Ticks once per shard per health round.
    RouterShard = 4,
    /// The fleet supervisor visiting one shard *process* (SIGKILL of a
    /// live OS child). Ticks once per shard per supervision round.
    ShardProcess = 5,
}

const SITES: usize = 6;

/// What the injector asks the passing thread to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic (inside the worker's `catch_unwind` scope).
    PanicWorker,
    /// Sleep for the given duration before proceeding.
    Delay(Duration),
    /// Shut the connection down both ways, dropping it mid-stream.
    DropConn,
    /// Flip the frame's kind byte before writing, desynchronizing the
    /// peer's decoder (it must drop the connection and resubmit).
    CorruptFrame,
    /// Write only the first half of the frame, then drop the connection
    /// (a torn frame: the peer sees EOF mid-frame, a typed error).
    TruncateFrame,
    /// Kill the shard the router's health loop is visiting: admission
    /// stops (already-admitted work still drains) and the router must
    /// fail traffic over to the surviving shards. The router refuses to
    /// kill the last healthy shard, so a budgeted plan can never take
    /// the whole fleet down.
    KillShard,
    /// SIGKILL the shard *process* the fleet supervisor is visiting: the
    /// OS reclaims it instantly, every request in flight on its
    /// connection comes back as a typed `ShardLost` (the router resubmits
    /// once), and the supervisor respawns a fresh process with capped
    /// backoff. The supervisor refuses to kill the last live process.
    KillProcess,
}

#[derive(Debug, Clone, Copy)]
struct Rule {
    site: FaultSite,
    /// Fire when the site clock `c` satisfies `c % every == offset`.
    every: u64,
    offset: u64,
    /// Lifetime injection budget for this rule.
    max: u64,
    action: FaultAction,
}

/// A named, seeded schedule of faults. Pure data: build one, wrap it in
/// a [`FaultHook`], and hand that to the service and server.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// The built-in plan name (`worker-panic`, `slow-batch`, ...).
    pub name: &'static str,
    rules: Vec<Rule>,
}

/// SplitMix64: cheap, well-distributed derivation of per-plan constants
/// from the seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Every built-in plan name accepted by [`FaultPlan::named`].
    pub const NAMES: &'static [&'static str] = &[
        "worker-panic",
        "slow-batch",
        "queue-stall",
        "conn-drop",
        "frame-corrupt",
        "shard-kill",
        "proc-kill",
        "mixed",
        "inert",
    ];

    /// The built-in plan `name` derived from `seed`.
    pub fn named(name: &str, seed: u64) -> Result<FaultPlan, String> {
        match name {
            "worker-panic" => Ok(Self::worker_panic(seed)),
            "slow-batch" => Ok(Self::slow_batch(seed)),
            "queue-stall" => Ok(Self::queue_stall(seed)),
            "conn-drop" => Ok(Self::conn_drop(seed)),
            "frame-corrupt" => Ok(Self::frame_corrupt(seed)),
            "shard-kill" => Ok(Self::shard_kill(seed)),
            "proc-kill" => Ok(Self::proc_kill(seed)),
            "mixed" => Ok(Self::mixed(seed)),
            "inert" => Ok(Self::inert(seed)),
            other => Err(format!(
                "unknown fault plan {other} (use one of {})",
                Self::NAMES.join(", ")
            )),
        }
    }

    /// Panics a worker on a seed-derived residue of the batch clock, six
    /// times: enough to prove supervision sustains repeated crashes, few
    /// enough that the run still makes progress.
    pub fn worker_panic(seed: u64) -> FaultPlan {
        let every = 2 + splitmix(seed) % 3; // every 2nd..4th batch
        FaultPlan {
            seed,
            name: "worker-panic",
            rules: vec![Rule {
                site: FaultSite::WorkerBatch,
                every,
                offset: splitmix(seed ^ 1) % every,
                max: 6,
                action: FaultAction::PanicWorker,
            }],
        }
    }

    /// Stalls a worker for a few milliseconds on a residue of the batch
    /// clock: requests behind it must still all be answered.
    pub fn slow_batch(seed: u64) -> FaultPlan {
        let every = 3 + splitmix(seed) % 4;
        let ms = 2 + splitmix(seed ^ 2) % 5;
        FaultPlan {
            seed,
            name: "slow-batch",
            rules: vec![Rule {
                site: FaultSite::WorkerBatch,
                every,
                offset: splitmix(seed ^ 3) % every,
                max: 8,
                action: FaultAction::Delay(Duration::from_millis(ms)),
            }],
        }
    }

    /// Stalls the former's drain loop, backing the ingest queue up
    /// against its capacity bound.
    pub fn queue_stall(seed: u64) -> FaultPlan {
        let every = 4 + splitmix(seed) % 4;
        let ms = 1 + splitmix(seed ^ 4) % 4;
        FaultPlan {
            seed,
            name: "queue-stall",
            rules: vec![Rule {
                site: FaultSite::FormerDrain,
                every,
                offset: splitmix(seed ^ 5) % every,
                max: 6,
                action: FaultAction::Delay(Duration::from_millis(ms)),
            }],
        }
    }

    /// Drops live connections mid-stream from both the read and write
    /// sides; clients must reconnect and resubmit.
    pub fn conn_drop(seed: u64) -> FaultPlan {
        let w_every = 23 + splitmix(seed) % 16;
        let r_every = 41 + splitmix(seed ^ 6) % 16;
        FaultPlan {
            seed,
            name: "conn-drop",
            rules: vec![
                Rule {
                    site: FaultSite::ConnWrite,
                    every: w_every,
                    offset: splitmix(seed ^ 7) % w_every,
                    max: 4,
                    action: FaultAction::DropConn,
                },
                Rule {
                    site: FaultSite::ConnRead,
                    every: r_every,
                    offset: splitmix(seed ^ 8) % r_every,
                    max: 2,
                    action: FaultAction::DropConn,
                },
            ],
        }
    }

    /// Corrupts and truncates reply frames on the wire; the peer's
    /// decoder must fail typed (never panic) and recover by reconnecting.
    pub fn frame_corrupt(seed: u64) -> FaultPlan {
        let c_every = 29 + splitmix(seed) % 12;
        let t_every = 47 + splitmix(seed ^ 9) % 12;
        FaultPlan {
            seed,
            name: "frame-corrupt",
            rules: vec![
                Rule {
                    site: FaultSite::ConnWrite,
                    every: c_every,
                    offset: splitmix(seed ^ 10) % c_every,
                    max: 3,
                    action: FaultAction::CorruptFrame,
                },
                Rule {
                    site: FaultSite::ConnWrite,
                    every: t_every,
                    offset: splitmix(seed ^ 11) % t_every,
                    max: 2,
                    action: FaultAction::TruncateFrame,
                },
            ],
        }
    }

    /// Kills whole shards from the router's health loop, twice: enough
    /// to prove failover re-routes live traffic, and one below the
    /// fleet size the chaos harness runs with (the router additionally
    /// refuses to kill the last healthy shard).
    pub fn shard_kill(seed: u64) -> FaultPlan {
        let every = 20 + splitmix(seed) % 12;
        FaultPlan {
            seed,
            name: "shard-kill",
            rules: vec![Rule {
                site: FaultSite::RouterShard,
                every,
                offset: splitmix(seed ^ 12) % every,
                max: 2,
                action: FaultAction::KillShard,
            }],
        }
    }

    /// SIGKILLs whole shard *processes* from the fleet supervisor's
    /// round, twice: enough to prove OS-level crash recovery (in-flight
    /// requests come back as `ShardLost` and are resubmitted, the
    /// supervisor respawns the child), and one below the process count
    /// the chaos harness runs with (the supervisor additionally refuses
    /// to kill the last live process).
    pub fn proc_kill(seed: u64) -> FaultPlan {
        let every = 16 + splitmix(seed) % 12;
        FaultPlan {
            seed,
            name: "proc-kill",
            rules: vec![Rule {
                site: FaultSite::ShardProcess,
                every,
                offset: splitmix(seed ^ 13) % every,
                max: 2,
                action: FaultAction::KillProcess,
            }],
        }
    }

    /// Everything at once, at reduced rates.
    pub fn mixed(seed: u64) -> FaultPlan {
        let mut rules = Vec::new();
        for plan in [
            Self::worker_panic(seed),
            Self::slow_batch(seed ^ 0x5151),
            Self::queue_stall(seed ^ 0xA2A2),
            Self::conn_drop(seed ^ 0xF3F3),
            Self::frame_corrupt(seed ^ 0x1C1C),
        ] {
            rules.extend(plan.rules.into_iter().map(|mut r| {
                r.every *= 2; // halve every rate
                r.max = r.max.div_ceil(2);
                r
            }));
        }
        FaultPlan {
            seed,
            name: "mixed",
            rules,
        }
    }

    /// An enabled plan with no rules: every site check runs the full
    /// decide path but nothing ever fires. Used by the benches to price
    /// the hook machinery itself.
    pub fn inert(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            name: "inert",
            rules: Vec::new(),
        }
    }

    /// Number of rules in the plan.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

/// The live injector: a plan plus its logical clocks.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    counts: [AtomicU64; SITES],
    fired: Vec<AtomicU64>,
    injected: AtomicU64,
}

impl FaultInjector {
    fn new(plan: FaultPlan) -> FaultInjector {
        let fired = (0..plan.rules.len()).map(|_| AtomicU64::new(0)).collect();
        FaultInjector {
            plan,
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            fired,
            injected: AtomicU64::new(0),
        }
    }

    /// Ticks `site`'s clock and returns the action to take, if any.
    fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        let c = self.counts[site as usize].fetch_add(1, Ordering::Relaxed);
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.site != site || c % rule.every != rule.offset {
                continue;
            }
            if self.fired[i].fetch_add(1, Ordering::Relaxed) >= rule.max {
                continue;
            }
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(rule.action);
        }
        None
    }
}

/// The handle the service threads carry. Cloning is an `Arc` clone;
/// the disabled hook (the default) is a `None` and costs one branch per
/// site check.
#[derive(Clone, Default)]
pub struct FaultHook {
    inner: Option<Arc<FaultInjector>>,
}

impl FaultHook {
    /// The no-op hook production paths run with.
    pub fn disabled() -> FaultHook {
        FaultHook { inner: None }
    }

    /// A hook driving the given plan.
    pub fn from_plan(plan: FaultPlan) -> FaultHook {
        FaultHook {
            inner: Some(Arc::new(FaultInjector::new(plan))),
        }
    }

    /// `true` when a plan is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ticks `site`'s clock (when enabled) and returns the fault to
    /// inject, if any. The disabled path is a single `None` branch.
    #[inline]
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        match &self.inner {
            None => None,
            Some(inj) => inj.decide(site),
        }
    }

    /// Total faults injected so far (0 when disabled).
    pub fn injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.injected.load(Ordering::Relaxed))
    }

    /// The attached plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.inner.as_ref().map(|i| &i.plan)
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.plan() {
            None => write!(f, "FaultHook(disabled)"),
            Some(p) => write!(f, "FaultHook({} seed {})", p.name, p.seed),
        }
    }
}

/// Marker carried by every panic the harness injects, so the panic hook
/// below can tell them from real bugs.
pub(crate) const INJECTED_PANIC_MARKER: &str = "injected worker panic";

/// Installs (once, process-wide) a panic hook that swallows the stderr
/// noise of panics *injected by the harness* — chaos runs fire dozens —
/// while delegating every other panic to the previously installed hook
/// untouched.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains(INJECTED_PANIC_MARKER))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC_MARKER));
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays `n` ticks of one site and collects the firing positions.
    fn firings(hook: &FaultHook, site: FaultSite, n: u64) -> Vec<(u64, FaultAction)> {
        (0..n)
            .filter_map(|i| hook.check(site).map(|a| (i, a)))
            .collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let a = FaultHook::from_plan(FaultPlan::worker_panic(seed));
            let b = FaultHook::from_plan(FaultPlan::worker_panic(seed));
            assert_eq!(
                firings(&a, FaultSite::WorkerBatch, 200),
                firings(&b, FaultSite::WorkerBatch, 200),
            );
            assert_eq!(a.injected(), b.injected());
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let schedules: Vec<_> = (0..8u64)
            .map(|s| {
                let h = FaultHook::from_plan(FaultPlan::conn_drop(s));
                firings(&h, FaultSite::ConnWrite, 400)
            })
            .collect();
        assert!(
            schedules.windows(2).any(|w| w[0] != w[1]),
            "eight consecutive seeds produced identical conn-drop schedules"
        );
    }

    #[test]
    fn budgets_cap_injections() {
        let hook = FaultHook::from_plan(FaultPlan::worker_panic(3));
        let fired = firings(&hook, FaultSite::WorkerBatch, 100_000);
        assert_eq!(fired.len(), 6, "worker-panic budget is 6");
        assert!(fired
            .iter()
            .all(|(_, a)| matches!(a, FaultAction::PanicWorker)));
        // Exhausted: later ticks never fire again.
        assert!(firings(&hook, FaultSite::WorkerBatch, 10_000).is_empty());
    }

    #[test]
    fn sites_are_independent_clocks() {
        let hook = FaultHook::from_plan(FaultPlan::conn_drop(11));
        // Ticking an unrelated site never fires conn rules.
        assert!(firings(&hook, FaultSite::WorkerBatch, 1000).is_empty());
        assert!(!firings(&hook, FaultSite::ConnWrite, 1000).is_empty());
    }

    #[test]
    fn disabled_hook_is_inert_and_cheap() {
        let hook = FaultHook::disabled();
        assert!(!hook.is_enabled());
        for _ in 0..1000 {
            assert!(hook.check(FaultSite::WorkerBatch).is_none());
        }
        assert_eq!(hook.injected(), 0);
        let inert = FaultHook::from_plan(FaultPlan::inert(5));
        assert!(inert.is_enabled());
        assert!(firings(&inert, FaultSite::ConnWrite, 1000).is_empty());
    }

    #[test]
    fn proc_kill_fires_only_at_the_process_site_within_budget() {
        let hook = FaultHook::from_plan(FaultPlan::proc_kill(42));
        assert!(firings(&hook, FaultSite::RouterShard, 10_000).is_empty());
        let fired = firings(&hook, FaultSite::ShardProcess, 10_000);
        assert_eq!(fired.len(), 2, "proc-kill budget is 2");
        assert!(fired
            .iter()
            .all(|(_, a)| matches!(a, FaultAction::KillProcess)));
    }

    #[test]
    fn named_plans_resolve_and_reject() {
        for name in FaultPlan::NAMES {
            let plan = FaultPlan::named(name, 42).unwrap();
            assert_eq!(plan.name, *name);
        }
        assert!(FaultPlan::named("meteor-strike", 42).is_err());
        assert!(FaultPlan::mixed(1).rule_count() >= 5);
    }
}
