//! Deadline-based batch forming: the host analogue of wave quantization.
//!
//! Tiny Cholesky factorizations only pay off executed thousands at a time
//! (the paper's entire premise), but requests arrive one by one. The
//! former holds arrivals in per-`(n, dtype)` groups and flushes a group
//! when it reaches the size threshold (occupancy wins) or when its oldest
//! request has waited `max_delay` (latency wins) — the same trade the GPU
//! makes when a partially-filled last wave ships anyway.
//!
//! A flushed group is staged into a canonical buffer (requests arrive as
//! plain column-major matrices), padded to a full lane group with
//! identity matrices, and packed through
//! [`pack_batch_host`](ibcf_kernels::pack_batch_host) into a 128-byte
//! aligned buffer in the interleave the [`EnginePlan`] chose — so the
//! worker's factorization runs the in-place lane engine with every group
//! full and no scalar tail.

use crate::engine::{EnginePlan, EngineSelector};
use crate::queue::IngestQueue;
use crate::request::{Dtype, FactorReply, Outcome, Payload, Pending, RejectReason};
use crate::stats::ServiceStats;
use ibcf_core::Real;
use ibcf_kernels::pack_batch_host;
use ibcf_layout::{AlignedVec, BatchLayout, Canonical, Layout};
use std::collections::HashMap;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batch-forming policy.
#[derive(Debug, Clone, Copy)]
pub struct FormerConfig {
    /// Flush a group as soon as it holds this many live requests.
    pub max_batch: usize,
    /// Flush a group once its oldest request has waited this long.
    pub max_delay: Duration,
}

impl Default for FormerConfig {
    fn default() -> Self {
        FormerConfig {
            max_batch: 1024,
            max_delay: Duration::from_millis(1),
        }
    }
}

/// A packed, ready-to-factorize buffer in either precision.
pub enum PackedData {
    /// Single-precision batch.
    F32(AlignedVec<f32>),
    /// Double-precision batch.
    F64(AlignedVec<f64>),
}

impl std::fmt::Debug for PackedData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedData::F32(v) => write!(f, "PackedData::F32(len {})", v.len()),
            PackedData::F64(v) => write!(f, "PackedData::F64(len {})", v.len()),
        }
    }
}

/// One formed batch: matrix `i` of the packed buffer belongs to
/// `reqs[i]`; slots `reqs.len()..slots` are identity padding.
#[derive(Debug)]
pub struct FormedBatch {
    /// Matrix dimension.
    pub n: usize,
    /// Element type.
    pub dtype: Dtype,
    /// Engine parameters the worker must run with.
    pub plan: EnginePlan,
    /// The packed layout (`batch() == slots`).
    pub layout: Layout,
    /// The packed, aligned buffer.
    pub data: PackedData,
    /// The requests, in matrix order.
    pub reqs: Vec<Pending>,
    /// Lane-rounded slot count (live + identity padding).
    pub slots: usize,
}

/// Stages `reqs` (all dimension `n`, element type `T`) into a canonical
/// buffer, identity-pads to a full lane group, and packs into the plan's
/// interleave.
fn pack_group<T: Real>(
    n: usize,
    reqs: &[Pending],
    plan: EnginePlan,
    elems: impl Fn(&Payload) -> &[T],
) -> (Layout, AlignedVec<T>, usize) {
    let lanes = plan.lanes::<T>();
    let slots = reqs.len().div_ceil(lanes) * lanes;
    let canonical = Canonical::new(n, slots);
    let mut staging = vec![T::ZERO; canonical.len()];
    for (mat, req) in reqs.iter().enumerate() {
        // Canonical with lda == n: matrix `mat` is the contiguous window
        // starting at its (0, 0) element.
        let base = canonical.addr(mat, 0, 0);
        staging[base..base + n * n].copy_from_slice(elems(&req.payload));
    }
    for mat in reqs.len()..slots {
        let base = canonical.addr(mat, 0, 0);
        for d in 0..n {
            staging[base + d * n + d] = T::ONE;
        }
    }
    let layout = plan.layout(n, slots);
    let packed = pack_batch_host(&canonical, &staging, &layout);
    (layout, packed, slots)
}

/// Builds a [`FormedBatch`] from one flushed group.
pub fn form_batch(n: usize, dtype: Dtype, reqs: Vec<Pending>, plan: EnginePlan) -> FormedBatch {
    let (layout, data, slots) = match dtype {
        Dtype::F32 => {
            let (layout, packed, slots) = pack_group::<f32>(n, &reqs, plan, |p| match p {
                Payload::F32(v) => v.as_slice(),
                Payload::F64(_) => unreachable!("group mixed dtypes"),
            });
            (layout, PackedData::F32(packed), slots)
        }
        Dtype::F64 => {
            let (layout, packed, slots) = pack_group::<f64>(n, &reqs, plan, |p| match p {
                Payload::F64(v) => v.as_slice(),
                Payload::F32(_) => unreachable!("group mixed dtypes"),
            });
            (layout, PackedData::F64(packed), slots)
        }
    };
    FormedBatch {
        n,
        dtype,
        plan,
        layout,
        data,
        reqs,
        slots,
    }
}

struct Group {
    reqs: Vec<Pending>,
    oldest: Instant,
}

/// The former thread body: drains the ingest queue into per-`(n, dtype)`
/// groups, flushes on size or deadline, and hands formed batches to the
/// worker pool. Returns when the queue closes and every group flushed.
pub fn run_former(
    queue: Arc<IngestQueue>,
    selector: EngineSelector,
    config: FormerConfig,
    stats: Arc<ServiceStats>,
    out: SyncSender<FormedBatch>,
) {
    let mut groups: HashMap<(usize, Dtype), Group> = HashMap::new();
    let flush = |key: (usize, Dtype), group: Group, out: &SyncSender<FormedBatch>| {
        let (n, dtype) = key;
        let plan = selector.plan(n);
        let batch = form_batch(n, dtype, group.reqs, plan);
        stats.record_batch(batch.reqs.len(), batch.slots);
        if let Err(send_err) = out.send(batch) {
            // Workers are gone (shutdown race): fail the requests rather
            // than dropping them silently.
            for req in send_err.0.reqs {
                stats
                    .rejected
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                (req.sink)(FactorReply {
                    id: req.id,
                    outcome: Outcome::Rejected(RejectReason::Closed),
                });
            }
        }
    };
    loop {
        let deadline = groups.values().map(|g| g.oldest + config.max_delay).min();
        let (items, closed) = queue.drain_until(deadline);
        for p in items {
            let key = (p.n, p.payload.dtype());
            let group = groups.entry(key).or_insert_with(|| Group {
                oldest: p.enqueued,
                reqs: Vec::new(),
            });
            if group.reqs.is_empty() {
                group.oldest = p.enqueued;
            }
            group.reqs.push(p);
            if group.reqs.len() >= config.max_batch {
                let group = groups.remove(&key).expect("just inserted");
                flush(key, group, &out);
            }
        }
        let now = Instant::now();
        let due: Vec<(usize, Dtype)> = groups
            .iter()
            .filter(|(_, g)| closed || g.oldest + config.max_delay <= now)
            .map(|(&k, _)| k)
            .collect();
        for key in due {
            let group = groups.remove(&key).expect("listed above");
            flush(key, group, &out);
        }
        if closed && groups.is_empty() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Payload;
    use ibcf_layout::gather_matrix;
    use std::sync::mpsc::sync_channel;

    fn req(id: u64, n: usize, value: f32) -> Pending {
        Pending {
            id,
            n,
            payload: Payload::F32(vec![value; n * n]),
            enqueued: Instant::now(),
            sink: Box::new(|_| {}),
        }
    }

    #[test]
    fn formed_batch_pads_tail_with_identity() {
        let n = 4;
        let plan = EngineSelector::heuristic().plan(n);
        let lanes = plan.lanes::<f32>();
        let reqs: Vec<Pending> = (0..lanes + 3).map(|i| req(i as u64, n, i as f32)).collect();
        let batch = form_batch(n, Dtype::F32, reqs, plan);
        assert_eq!(batch.slots, 2 * lanes);
        assert_eq!(batch.layout.batch(), 2 * lanes);
        let data = match &batch.data {
            PackedData::F32(v) => v,
            _ => unreachable!(),
        };
        let mut m = vec![0.0f32; n * n];
        // Live matrices carry their payloads...
        gather_matrix(&batch.layout, data.as_slice(), 2, &mut m, n);
        assert!(m.iter().all(|&x| x == 2.0));
        // ...padding slots are exact identities.
        for pad in batch.reqs.len()..batch.slots {
            gather_matrix(&batch.layout, data.as_slice(), pad, &mut m, n);
            for col in 0..n {
                for row in 0..n {
                    let want = if row == col { 1.0 } else { 0.0 };
                    assert_eq!(m[col * n + row], want, "pad {pad} ({row},{col})");
                }
            }
        }
    }

    #[test]
    fn former_flushes_on_size_threshold() {
        let queue = Arc::new(IngestQueue::new(4096));
        let stats = Arc::new(ServiceStats::default());
        let (tx, rx) = sync_channel(8);
        let config = FormerConfig {
            max_batch: 32,
            max_delay: Duration::from_secs(3600), // deadline never fires
        };
        let (q2, s2) = (queue.clone(), stats.clone());
        let handle =
            std::thread::spawn(move || run_former(q2, EngineSelector::heuristic(), config, s2, tx));
        for i in 0..64 {
            queue.try_push(req(i, 8, 1.0)).unwrap();
        }
        let a = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(a.reqs.len(), 32);
        assert_eq!(b.reqs.len(), 32);
        queue.close();
        handle.join().unwrap();
        assert_eq!(stats.batches.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn former_flushes_on_deadline_and_groups_by_key() {
        let queue = Arc::new(IngestQueue::new(4096));
        let stats = Arc::new(ServiceStats::default());
        let (tx, rx) = sync_channel(8);
        let config = FormerConfig {
            max_batch: 1024, // size threshold never fires
            max_delay: Duration::from_millis(10),
        };
        let (q2, s2) = (queue.clone(), stats.clone());
        let handle =
            std::thread::spawn(move || run_former(q2, EngineSelector::heuristic(), config, s2, tx));
        // Two sizes and one f64 request: three distinct groups.
        for i in 0..5 {
            queue.try_push(req(i, 8, 1.0)).unwrap();
        }
        for i in 5..8 {
            queue.try_push(req(i, 16, 1.0)).unwrap();
        }
        queue
            .try_push(Pending {
                id: 8,
                n: 8,
                payload: Payload::F64(vec![0.0; 64]),
                enqueued: Instant::now(),
                sink: Box::new(|_| {}),
            })
            .unwrap();
        let mut batches = Vec::new();
        for _ in 0..3 {
            batches.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        queue.close();
        handle.join().unwrap();
        let mut keys: Vec<(usize, Dtype, usize)> = batches
            .iter()
            .map(|b| (b.n, b.dtype, b.reqs.len()))
            .collect();
        keys.sort();
        assert_eq!(
            keys,
            vec![(8, Dtype::F32, 5), (8, Dtype::F64, 1), (16, Dtype::F32, 3)]
        );
    }
}
