//! Deadline-based batch forming: the host analogue of wave quantization.
//!
//! Tiny Cholesky factorizations only pay off executed thousands at a time
//! (the paper's entire premise), but requests arrive one by one. The
//! former holds arrivals in per-`(n, dtype)` groups and flushes a group
//! when it reaches the size threshold (occupancy wins) or when its oldest
//! request has waited `max_delay` (latency wins) — the same trade the GPU
//! makes when a partially-filled last wave ships anyway.
//!
//! A flushed group is assembled by the **fused ingest** path: each
//! request's column-major payload is scattered *once*, directly into a
//! 128-byte-aligned ([`AlignedVec`]) buffer already in the interleave the
//! [`EnginePlan`] chose, and the tail is identity-padded in place — so
//! the worker's factorization runs the in-place lane engine with every
//! group full and no scalar tail, and no element of a payload is copied
//! more than once. The original stage-into-canonical-then-
//! [`pack_batch_host`](ibcf_kernels::pack_batch_host) round trip (one
//! extra full copy of the batch) is kept as [`IngestMode::Staged`]: it is
//! the bitwise reference the fused path is property-tested against, and a
//! live A/B axis for the service benches.

use crate::engine::{EnginePlan, EngineSelector};
use crate::fault::{FaultAction, FaultHook, FaultSite};
use crate::queue::IngestQueue;
use crate::request::{Dtype, FactorReply, Outcome, Payload, Pending, RejectReason};
use crate::stats::ServiceStats;
use ibcf_core::Real;
use ibcf_kernels::pack_batch_host;
use ibcf_layout::{alloc_batch, scatter_batch_affine, AlignedVec, BatchLayout, Canonical, Layout};
use std::collections::HashMap;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a flushed group becomes a packed batch buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Scatter each payload once, directly into the aligned lane-group
    /// buffer in the plan's interleave; identity-pad the tail in place.
    #[default]
    Fused,
    /// Legacy reference path: stage payloads into a canonical buffer,
    /// identity-pad, then transcode the whole batch with
    /// [`pack_batch_host`] — one extra full copy.
    Staged,
}

impl IngestMode {
    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            IngestMode::Fused => "fused",
            IngestMode::Staged => "staged",
        }
    }
}

/// Batch-forming policy.
#[derive(Debug, Clone, Copy)]
pub struct FormerConfig {
    /// Flush a group as soon as it holds this many live requests.
    pub max_batch: usize,
    /// Flush a group once its oldest request has waited this long.
    pub max_delay: Duration,
    /// How far *before* a member's deadline its group is flushed, so the
    /// worker has a chance to finish inside the deadline instead of the
    /// former holding the request until the deadline itself.
    pub deadline_margin: Duration,
    /// How flushed groups are packed ([`IngestMode::Fused`] by default).
    pub ingest: IngestMode,
}

impl Default for FormerConfig {
    fn default() -> Self {
        FormerConfig {
            max_batch: 1024,
            max_delay: Duration::from_millis(1),
            deadline_margin: Duration::from_micros(200),
            ingest: IngestMode::Fused,
        }
    }
}

/// A packed, ready-to-factorize buffer in either precision.
pub enum PackedData {
    /// Single-precision batch.
    F32(AlignedVec<f32>),
    /// Double-precision batch.
    F64(AlignedVec<f64>),
}

impl std::fmt::Debug for PackedData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedData::F32(v) => write!(f, "PackedData::F32(len {})", v.len()),
            PackedData::F64(v) => write!(f, "PackedData::F64(len {})", v.len()),
        }
    }
}

/// One formed batch: matrix `i` of the packed buffer belongs to
/// `reqs[i]`; slots `reqs.len()..slots` are identity padding.
#[derive(Debug)]
pub struct FormedBatch {
    /// Matrix dimension.
    pub n: usize,
    /// Element type.
    pub dtype: Dtype,
    /// Engine parameters the worker must run with.
    pub plan: EnginePlan,
    /// The packed layout (`batch() == slots`).
    pub layout: Layout,
    /// The packed, aligned buffer.
    pub data: PackedData,
    /// The requests, in matrix order.
    pub reqs: Vec<Pending>,
    /// Lane-rounded slot count (live + identity padding).
    pub slots: usize,
}

/// Lane-rounded slot count for `reqs.len()` live requests under `plan`.
fn slot_count<T: Real>(reqs: &[Pending], plan: EnginePlan) -> usize {
    let lanes = plan.lanes::<T>();
    reqs.len().div_ceil(lanes) * lanes
}

/// The fused (zero-copy) pack path: scatters each request's payload
/// **once**, directly into a fresh 128-byte-aligned buffer already in the
/// plan's interleave, then identity-pads the tail in place. The buffer
/// comes from [`alloc_batch`] zero-initialized, so padding only needs the
/// diagonal ones — every off-diagonal element of a padding slot (and of
/// the layout's own padding beyond `slots`) is already the zero the
/// staged path would have produced. The scatter itself is the
/// lane-blocked [`scatter_batch_affine`], which writes the interleaved
/// buffer as one sequential stream instead of a strided pass per
/// request.
fn pack_group_fused<T: Real>(
    n: usize,
    reqs: &[Pending],
    plan: EnginePlan,
    elems: impl Fn(&Payload) -> &[T],
) -> (Layout, AlignedVec<T>, usize) {
    let slots = slot_count::<T>(reqs, plan);
    let layout = plan.layout(n, slots);
    let mut packed = alloc_batch::<T, _>(&layout);
    let mats: Vec<&[T]> = reqs.iter().map(|req| elems(&req.payload)).collect();
    scatter_batch_affine(&layout, packed.as_mut_slice(), &mats, n);
    for mat in reqs.len()..slots {
        for d in 0..n {
            let at = layout.addr(mat, d, d);
            packed[at] = T::ONE;
        }
    }
    (layout, packed, slots)
}

/// The legacy reference pack path: stages `reqs` (all dimension `n`,
/// element type `T`) into a canonical buffer, identity-pads to a full
/// lane group, and packs into the plan's interleave — one extra full copy
/// of the batch relative to [`pack_group_fused`]. Staging is
/// [`AlignedVec`]-backed so even this path hands lane kernels 128-byte-
/// aligned blocks.
fn pack_group_staged<T: Real>(
    n: usize,
    reqs: &[Pending],
    plan: EnginePlan,
    elems: impl Fn(&Payload) -> &[T],
) -> (Layout, AlignedVec<T>, usize) {
    let slots = slot_count::<T>(reqs, plan);
    let canonical = Canonical::new(n, slots);
    let mut staging = alloc_batch::<T, _>(&canonical);
    for (mat, req) in reqs.iter().enumerate() {
        // Canonical with lda == n: matrix `mat` is the contiguous window
        // starting at its (0, 0) element.
        let base = canonical.addr(mat, 0, 0);
        staging[base..base + n * n].copy_from_slice(elems(&req.payload));
    }
    for mat in reqs.len()..slots {
        let base = canonical.addr(mat, 0, 0);
        for d in 0..n {
            staging[base + d * n + d] = T::ONE;
        }
    }
    let layout = plan.layout(n, slots);
    let packed = pack_batch_host(&canonical, staging.as_slice(), &layout);
    (layout, packed, slots)
}

fn pack_group<T: Real>(
    n: usize,
    reqs: &[Pending],
    plan: EnginePlan,
    mode: IngestMode,
    elems: impl Fn(&Payload) -> &[T],
) -> (Layout, AlignedVec<T>, usize) {
    match mode {
        IngestMode::Fused => pack_group_fused(n, reqs, plan, elems),
        IngestMode::Staged => pack_group_staged(n, reqs, plan, elems),
    }
}

/// Builds a [`FormedBatch`] from one flushed group via the default
/// (fused, zero-copy) ingest path.
pub fn form_batch(n: usize, dtype: Dtype, reqs: Vec<Pending>, plan: EnginePlan) -> FormedBatch {
    form_batch_mode(n, dtype, reqs, plan, IngestMode::Fused)
}

/// Builds a [`FormedBatch`] via the legacy stage-then-pack reference
/// path. Bitwise-identical output to [`form_batch`] (property-tested);
/// exists as the equivalence oracle and bench baseline.
pub fn form_batch_staged(
    n: usize,
    dtype: Dtype,
    reqs: Vec<Pending>,
    plan: EnginePlan,
) -> FormedBatch {
    form_batch_mode(n, dtype, reqs, plan, IngestMode::Staged)
}

/// Builds a [`FormedBatch`] from one flushed group with an explicit
/// [`IngestMode`].
pub fn form_batch_mode(
    n: usize,
    dtype: Dtype,
    reqs: Vec<Pending>,
    plan: EnginePlan,
    mode: IngestMode,
) -> FormedBatch {
    let (layout, data, slots) = match dtype {
        Dtype::F32 => {
            let (layout, packed, slots) = pack_group::<f32>(n, &reqs, plan, mode, |p| match p {
                Payload::F32(v) => v.as_slice(),
                Payload::F64(_) => unreachable!("group mixed dtypes"),
            });
            (layout, PackedData::F32(packed), slots)
        }
        Dtype::F64 => {
            let (layout, packed, slots) = pack_group::<f64>(n, &reqs, plan, mode, |p| match p {
                Payload::F64(v) => v.as_slice(),
                Payload::F32(_) => unreachable!("group mixed dtypes"),
            });
            (layout, PackedData::F64(packed), slots)
        }
    };
    FormedBatch {
        n,
        dtype,
        plan,
        layout,
        data,
        reqs,
        slots,
    }
}

struct Group {
    reqs: Vec<Pending>,
    oldest: Instant,
    /// Soonest member deadline, if any member has one: the flush clock
    /// tightens to it so deadline-carrying requests are packed early
    /// enough to finish in time.
    tightest: Option<Instant>,
}

impl Group {
    fn flush_at(&self, config: &FormerConfig) -> Instant {
        let by_delay = self.oldest + config.max_delay;
        match self.tightest {
            Some(t) => by_delay.min(t.checked_sub(config.deadline_margin).unwrap_or(t)),
            None => by_delay,
        }
    }
}

/// Sheds a request whose deadline already passed: the caller promised it
/// would never pay for a factorization it can't use.
fn shed(p: Pending, stats: &ServiceStats) {
    let id = p.id;
    p.sink.send(FactorReply {
        id,
        outcome: Outcome::Rejected(RejectReason::DeadlineExceeded),
    });
    // Counters bump after delivery: `Client::drained` counts
    // `deadline_expired` as an answered admitted request.
    stats
        .deadline_expired
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    stats
        .rejected
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

fn expired(p: &Pending, now: Instant) -> bool {
    p.deadline.is_some_and(|d| now >= d)
}

/// The former thread body: drains the ingest queue into per-`(n, dtype)`
/// groups, flushes on size or deadline, and hands formed batches to the
/// worker pool. Requests whose deadline has already passed are shed with
/// [`RejectReason::DeadlineExceeded`] *before* packing — dead work never
/// reaches a worker. Returns when the queue closes and every group
/// flushed.
pub fn run_former(
    queue: Arc<IngestQueue>,
    selector: EngineSelector,
    config: FormerConfig,
    stats: Arc<ServiceStats>,
    out: SyncSender<FormedBatch>,
    hook: FaultHook,
) {
    let mut groups: HashMap<(usize, Dtype), Group> = HashMap::new();
    let flush = |key: (usize, Dtype), group: Group, out: &SyncSender<FormedBatch>| {
        let (n, dtype) = key;
        // Last-gasp shed: members can expire while the group waits.
        let now = Instant::now();
        let (live, dead): (Vec<Pending>, Vec<Pending>) =
            group.reqs.into_iter().partition(|p| !expired(p, now));
        for p in dead {
            shed(p, &stats);
        }
        if live.is_empty() {
            return;
        }
        let plan = selector.plan(n);
        let batch = form_batch_mode(n, dtype, live, plan, config.ingest);
        stats.record_batch(batch.reqs.len(), batch.slots);
        stats.record_ingest(config.ingest == IngestMode::Fused);
        if let Err(send_err) = out.send(batch) {
            // Workers are gone (shutdown race): fail the requests rather
            // than dropping them silently.
            for req in send_err.0.reqs {
                stats
                    .rejected
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                req.sink.send(FactorReply {
                    id: req.id,
                    outcome: Outcome::Rejected(RejectReason::ShuttingDown),
                });
            }
        }
    };
    loop {
        if let Some(FaultAction::Delay(d)) = hook.check(FaultSite::FormerDrain) {
            // Injected queue stall: the former goes dark for a moment,
            // letting the ingest queue back up behind it.
            std::thread::sleep(d);
        }
        let deadline = groups.values().map(|g| g.flush_at(&config)).min();
        let (items, closed) = queue.drain_until(deadline);
        let now = Instant::now();
        for p in items {
            if expired(&p, now) {
                shed(p, &stats);
                continue;
            }
            let key = (p.n, p.payload.dtype());
            let group = groups.entry(key).or_insert_with(|| Group {
                oldest: p.enqueued,
                reqs: Vec::new(),
                tightest: None,
            });
            if group.reqs.is_empty() {
                group.oldest = p.enqueued;
                group.tightest = None;
            }
            group.tightest = match (group.tightest, p.deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            group.reqs.push(p);
            if group.reqs.len() >= config.max_batch {
                let group = groups.remove(&key).expect("just inserted");
                flush(key, group, &out);
            }
        }
        let now = Instant::now();
        let due: Vec<(usize, Dtype)> = groups
            .iter()
            .filter(|(_, g)| closed || g.flush_at(&config) <= now)
            .map(|(&k, _)| k)
            .collect();
        for key in due {
            let group = groups.remove(&key).expect("listed above");
            flush(key, group, &out);
        }
        if closed && groups.is_empty() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Payload, ReplySink};
    use ibcf_layout::gather_matrix;
    use std::sync::mpsc::sync_channel;

    fn req(id: u64, n: usize, value: f32) -> Pending {
        Pending {
            id,
            n,
            payload: Payload::F32(vec![value; n * n]),
            enqueued: Instant::now(),
            deadline: None,
            sink: ReplySink::boxed(|_| {}),
        }
    }

    #[test]
    fn formed_batch_pads_tail_with_identity() {
        let n = 4;
        let plan = EngineSelector::heuristic().plan(n);
        let lanes = plan.lanes::<f32>();
        let reqs: Vec<Pending> = (0..lanes + 3).map(|i| req(i as u64, n, i as f32)).collect();
        let batch = form_batch(n, Dtype::F32, reqs, plan);
        assert_eq!(batch.slots, 2 * lanes);
        assert_eq!(batch.layout.batch(), 2 * lanes);
        let data = match &batch.data {
            PackedData::F32(v) => v,
            _ => unreachable!(),
        };
        let mut m = vec![0.0f32; n * n];
        // Live matrices carry their payloads...
        gather_matrix(&batch.layout, data.as_slice(), 2, &mut m, n);
        assert!(m.iter().all(|&x| x == 2.0));
        // ...padding slots are exact identities.
        for pad in batch.reqs.len()..batch.slots {
            gather_matrix(&batch.layout, data.as_slice(), pad, &mut m, n);
            for col in 0..n {
                for row in 0..n {
                    let want = if row == col { 1.0 } else { 0.0 };
                    assert_eq!(m[col * n + row], want, "pad {pad} ({row},{col})");
                }
            }
        }
    }

    #[test]
    fn fused_and_staged_ingest_are_bitwise_identical() {
        // The unit-level smoke of the proptest contract: both pack paths
        // produce the same layout and the same bits, including layout
        // padding past `slots`.
        for (n, count) in [(4usize, 1usize), (8, 19), (16, 33), (5, 64)] {
            let plan = EngineSelector::heuristic().plan(n);
            let mk = |_| {
                (0..count)
                    .map(|i| req(i as u64, n, 0.25 + i as f32))
                    .collect::<Vec<_>>()
            };
            let fused = form_batch_mode(n, Dtype::F32, mk(()), plan, IngestMode::Fused);
            let staged = form_batch_mode(n, Dtype::F32, mk(()), plan, IngestMode::Staged);
            assert_eq!(fused.slots, staged.slots, "n={n} count={count}");
            assert_eq!(fused.layout.kind(), staged.layout.kind());
            let (a, b) = match (&fused.data, &staged.data) {
                (PackedData::F32(a), PackedData::F32(b)) => (a, b),
                _ => unreachable!(),
            };
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "n={n} count={count} elem {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn packed_buffers_are_128_byte_aligned_both_modes() {
        // Alignment regression: both ingest modes must hand workers a
        // buffer whose base sits on a 128-byte boundary so lane blocks
        // never split cache lines (the staged path used to stage in a
        // plain `Vec`, which only guarantees element alignment).
        use ibcf_layout::BUFFER_ALIGN;
        let n = 8;
        let plan = EngineSelector::heuristic().plan(n);
        for mode in [IngestMode::Fused, IngestMode::Staged] {
            let reqs: Vec<Pending> = (0..21).map(|i| req(i as u64, n, 1.0)).collect();
            let batch = form_batch_mode(n, Dtype::F32, reqs, plan, mode);
            let ptr = match &batch.data {
                PackedData::F32(v) => v.as_slice().as_ptr() as usize,
                _ => unreachable!(),
            };
            assert_eq!(ptr % BUFFER_ALIGN, 0, "{mode:?}");
            let reqs: Vec<Pending> = (0..3)
                .map(|i| Pending {
                    id: i,
                    n,
                    payload: Payload::F64(vec![1.0; n * n]),
                    enqueued: Instant::now(),
                    deadline: None,
                    sink: ReplySink::boxed(|_| {}),
                })
                .collect();
            let batch = form_batch_mode(n, Dtype::F64, reqs, plan, mode);
            let ptr = match &batch.data {
                PackedData::F64(v) => v.as_slice().as_ptr() as usize,
                _ => unreachable!(),
            };
            assert_eq!(ptr % BUFFER_ALIGN, 0, "{mode:?} f64");
        }
    }

    #[test]
    fn former_flushes_on_size_threshold() {
        let queue = Arc::new(IngestQueue::new(4096));
        let stats = Arc::new(ServiceStats::default());
        let (tx, rx) = sync_channel(8);
        let config = FormerConfig {
            max_batch: 32,
            max_delay: Duration::from_secs(3600), // deadline never fires
            ..FormerConfig::default()
        };
        let (q2, s2) = (queue.clone(), stats.clone());
        let handle = std::thread::spawn(move || {
            run_former(
                q2,
                EngineSelector::heuristic(),
                config,
                s2,
                tx,
                FaultHook::disabled(),
            )
        });
        for i in 0..64 {
            queue.try_push(req(i, 8, 1.0)).unwrap();
        }
        let a = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(a.reqs.len(), 32);
        assert_eq!(b.reqs.len(), 32);
        queue.close();
        handle.join().unwrap();
        assert_eq!(stats.batches.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn former_flushes_on_deadline_and_groups_by_key() {
        let queue = Arc::new(IngestQueue::new(4096));
        let stats = Arc::new(ServiceStats::default());
        let (tx, rx) = sync_channel(8);
        let config = FormerConfig {
            max_batch: 1024, // size threshold never fires
            max_delay: Duration::from_millis(10),
            ..FormerConfig::default()
        };
        let (q2, s2) = (queue.clone(), stats.clone());
        let handle = std::thread::spawn(move || {
            run_former(
                q2,
                EngineSelector::heuristic(),
                config,
                s2,
                tx,
                FaultHook::disabled(),
            )
        });
        // Two sizes and one f64 request: three distinct groups.
        for i in 0..5 {
            queue.try_push(req(i, 8, 1.0)).unwrap();
        }
        for i in 5..8 {
            queue.try_push(req(i, 16, 1.0)).unwrap();
        }
        queue
            .try_push(Pending {
                id: 8,
                n: 8,
                payload: Payload::F64(vec![0.0; 64]),
                enqueued: Instant::now(),
                deadline: None,
                sink: ReplySink::boxed(|_| {}),
            })
            .unwrap();
        let mut batches = Vec::new();
        for _ in 0..3 {
            batches.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        queue.close();
        handle.join().unwrap();
        let mut keys: Vec<(usize, Dtype, usize)> = batches
            .iter()
            .map(|b| (b.n, b.dtype, b.reqs.len()))
            .collect();
        keys.sort();
        assert_eq!(
            keys,
            vec![(8, Dtype::F32, 5), (8, Dtype::F64, 1), (16, Dtype::F32, 3)]
        );
    }

    #[test]
    fn expired_requests_are_shed_before_packing() {
        let queue = Arc::new(IngestQueue::new(4096));
        let stats = Arc::new(ServiceStats::default());
        let (tx, rx) = sync_channel(8);
        let config = FormerConfig {
            max_batch: 4,
            max_delay: Duration::from_secs(3600),
            ..FormerConfig::default()
        };
        let (q2, s2) = (queue.clone(), stats.clone());
        let handle = std::thread::spawn(move || {
            run_former(
                q2,
                EngineSelector::heuristic(),
                config,
                s2,
                tx,
                FaultHook::disabled(),
            )
        });
        let (reply_tx, reply_rx) = sync_channel(8);
        // Two requests whose deadline already passed, then enough live
        // ones to trip the size threshold.
        for id in [100u64, 101] {
            let rt = reply_tx.clone();
            queue
                .try_push(Pending {
                    id,
                    n: 8,
                    payload: Payload::F32(vec![0.0; 64]),
                    enqueued: Instant::now(),
                    deadline: Some(Instant::now() - Duration::from_millis(1)),
                    sink: ReplySink::boxed(move |r| rt.send(r).unwrap()),
                })
                .unwrap();
        }
        for i in 0..4 {
            queue.try_push(req(i, 8, 1.0)).unwrap();
        }
        let batch = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let ids: Vec<u64> = batch.reqs.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "expired requests never packed");
        for _ in 0..2 {
            let r = reply_rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(r.id >= 100);
            assert_eq!(r.outcome, Outcome::Rejected(RejectReason::DeadlineExceeded));
        }
        queue.close();
        handle.join().unwrap();
        use std::sync::atomic::Ordering;
        assert_eq!(stats.deadline_expired.load(Ordering::Relaxed), 2);
        assert_eq!(stats.rejected.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tightest_member_deadline_advances_the_flush() {
        let queue = Arc::new(IngestQueue::new(4096));
        let stats = Arc::new(ServiceStats::default());
        let (tx, rx) = sync_channel(8);
        let config = FormerConfig {
            max_batch: 1024,                      // size never fires
            max_delay: Duration::from_secs(3600), // age never fires
            deadline_margin: Duration::from_millis(5),
            ..FormerConfig::default()
        };
        let (q2, s2) = (queue.clone(), stats.clone());
        let handle = std::thread::spawn(move || {
            run_former(
                q2,
                EngineSelector::heuristic(),
                config,
                s2,
                tx,
                FaultHook::disabled(),
            )
        });
        let mut p = req(7, 8, 1.0);
        let deadline = Instant::now() + Duration::from_millis(40);
        p.deadline = Some(deadline);
        queue.try_push(p).unwrap();
        // Without deadline propagation this would sit for an hour; the
        // member deadline must flush it (margin early) while still live.
        let batch = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            Instant::now() < deadline,
            "flushed before the member deadline, not at max_delay"
        );
        assert_eq!(batch.reqs.len(), 1);
        assert_eq!(batch.reqs[0].id, 7);
        queue.close();
        handle.join().unwrap();
    }
}
