//! Length-prefixed binary frame codec for the TCP front-end.
//!
//! Every frame is `u32` little-endian length (of everything after the
//! length word) followed by a one-byte kind and the kind's body. All
//! integers are little-endian; matrix elements travel as raw IEEE-754
//! bits in column-major order, so a factor reply round-trips bitwise.
//!
//! Kinds:
//!
//! | kind | name          | body |
//! |------|---------------|------|
//! | 1    | factor req    | `id: u64`, `n: u32`, `dtype: u8`, `deadline_us: u32` (0 = none), `n*n` elements |
//! | 2    | factor reply  | `id: u64`, `status: u8`, `dtype: u8`, `aux: u32`, elements iff ok |
//! | 3    | stats req     | empty |
//! | 4    | stats reply   | UTF-8 JSON [`StatsSnapshot`](crate::stats::StatsSnapshot) |
//! | 5    | shutdown      | empty |
//! | 6    | shutdown ack  | empty |
//! | 7    | large req     | same body as factor req |
//!
//! A *large* request (kind 7) shares the factor-request body byte for
//! byte — only the kind differs. The kind is the routing decision: kind 1
//! enters the batch former and is packed with its cohort, kind 7 bypasses
//! the former entirely and is scheduled on the task-graph worker pool
//! (large matrices don't batch — they schedule). Replies for both kinds
//! travel as kind 2.
//!
//! Reply `status`: 0 = factor (elements follow), 1 = not SPD (`aux` =
//! failing column), 2 = non-finite (`aux` = column), 3 = rejected
//! (`aux` = [`RejectReason`] tag), 4 = worker crashed (safe to
//! resubmit), 5 = backpressure (`aux` = retry-after hint in
//! microseconds; resubmit no sooner than the hint), 6 = shard lost
//! (the shard process died with the request in flight; safe to
//! resubmit — the router already retried once before surfacing this).
//!
//! Hedged requests need no wire-level ids: every shard connection
//! renumbers onto its own private wire-id space, so a hedge copy on a
//! second shard is just another wire id there, and duplicate
//! suppression happens at the router's shared reply sink.
//!
//! `deadline_us = 0` means *no deadline*, so encoders must never round a
//! real-but-tiny remaining deadline down to 0 — use
//! [`wire_deadline_us`], which clamps a present deadline to ≥ 1 µs.
//!
//! Decoding failures are typed ([`FrameError`]): a *torn* frame (EOF in
//! the middle of a frame) is distinguished from a *malformed* one (bad
//! length, unknown tag, short body) so the server can log the right
//! thing and close only the offending connection — never the listener.

use crate::request::{Dtype, FactorReply, Outcome, Payload, RejectReason};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Frame kind: factorization request.
pub const K_FACTOR_REQ: u8 = 1;
/// Frame kind: factorization reply.
pub const K_FACTOR_REPLY: u8 = 2;
/// Frame kind: stats request.
pub const K_STATS_REQ: u8 = 3;
/// Frame kind: stats reply (JSON snapshot).
pub const K_STATS_REPLY: u8 = 4;
/// Frame kind: shutdown request.
pub const K_SHUTDOWN: u8 = 5;
/// Frame kind: shutdown acknowledged.
pub const K_SHUTDOWN_ACK: u8 = 6;
/// Frame kind: large-matrix factorization request (former bypass; body
/// identical to [`K_FACTOR_REQ`]).
pub const K_LARGE_REQ: u8 = 7;

/// Largest accepted frame (a 64 × 64 f64 matrix is ~32 KiB; this leaves
/// three orders of magnitude of headroom while bounding a hostile or
/// corrupt length word).
pub const MAX_FRAME: usize = 1 << 25;

/// Why reading or decoding a frame failed. One bad frame costs one
/// connection, never the process: callers close the stream the error
/// came from and keep accepting.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (reset, broken pipe, ...).
    Io(io::Error),
    /// The stream ended in the middle of a frame — the peer died or was
    /// cut off mid-write. `context` names the section that was cut.
    Torn {
        /// Which part of the frame the EOF landed in.
        context: &'static str,
    },
    /// The bytes arrived intact but don't parse: bad length word,
    /// unknown tag, short or inconsistent body.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Torn { context } => write!(f, "torn frame: EOF inside {context}"),
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io(inner) => inner,
            FrameError::Torn { .. } => io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()),
            FrameError::Malformed(_) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        }
    }
}

fn bad(msg: impl Into<String>) -> FrameError {
    FrameError::Malformed(msg.into())
}

/// `read_exact` that converts an unexpected EOF into [`FrameError::Torn`]
/// tagged with the frame section being read.
fn read_section(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Torn { context }
        } else {
            FrameError::Io(e)
        }
    })
}

/// Writes one frame (single `write_all`, so concurrent writers on a
/// shared stream would still interleave whole frames — the server
/// serializes through a writer thread anyway).
pub fn write_frame(w: &mut impl Write, kind: u8, body: &[u8]) -> io::Result<()> {
    let len = body.len() + 1;
    assert!(len <= MAX_FRAME, "frame too large to encode");
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Reads one frame, returning `(kind, body)`. `Ok(None)` is a clean EOF
/// at a frame boundary; EOF anywhere *inside* a frame is
/// [`FrameError::Torn`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut len_word = [0u8; 4];
    match r.read_exact(&mut len_word) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_le_bytes(len_word) as usize;
    if len == 0 {
        return Err(bad("zero-length frame"));
    }
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    let mut kind = [0u8; 1];
    read_section(r, &mut kind, "kind byte")?;
    let mut body = vec![0u8; len - 1];
    read_section(r, &mut body, "frame body")?;
    Ok(Some((kind[0], body)))
}

fn put_elems(out: &mut Vec<u8>, payload: &Payload) {
    match payload {
        Payload::F32(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::F64(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
}

fn take_elems(bytes: &[u8], dtype: Dtype, count: usize) -> Result<Payload, FrameError> {
    if bytes.len() != count * dtype.elem_bytes() {
        return Err(bad(format!(
            "element section is {} bytes, want {} × {}",
            bytes.len(),
            count,
            dtype.elem_bytes()
        )));
    }
    Ok(match dtype {
        Dtype::F32 => Payload::F32(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        ),
        Dtype::F64 => Payload::F64(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        ),
    })
}

/// Encodes a remaining deadline for the wire. `None` maps to `0`
/// (*no deadline*); a present deadline is clamped to the `1 ..= u32::MAX`
/// microsecond range. The low clamp matters: the wire reserves `0` for
/// "no deadline", so rounding an almost-expired deadline (< 1 µs
/// remaining) down to zero would silently make the request immortal —
/// it must instead arrive as an already-hopeless 1 µs deadline and be
/// shed with a typed `DeadlineExceeded`.
pub fn wire_deadline_us(remaining: Option<Duration>) -> u32 {
    match remaining {
        None => 0,
        Some(d) => d.as_micros().clamp(1, u128::from(u32::MAX)) as u32,
    }
}

/// Encodes a factorization request body. `deadline_us` is a relative
/// deadline in microseconds from receipt (`0` = no deadline) — relative,
/// not absolute, so client and server clocks need not agree.
pub fn encode_factor_req(id: u64, n: usize, deadline_us: u32, payload: &Payload) -> Vec<u8> {
    let mut body = Vec::with_capacity(17 + payload.len() * payload.dtype().elem_bytes());
    body.extend_from_slice(&id.to_le_bytes());
    body.extend_from_slice(&(n as u32).to_le_bytes());
    body.push(payload.dtype().to_u8());
    body.extend_from_slice(&deadline_us.to_le_bytes());
    put_elems(&mut body, payload);
    body
}

/// Decodes a factorization request body into
/// `(id, n, deadline_us, payload)`.
///
/// Only structural validity is checked here (whole elements, known
/// dtype). An element count that disagrees with `n * n` decodes fine and
/// is the *service's* call to reject — the submitter then gets a typed
/// `BadPayload` reply instead of a dropped connection.
pub fn decode_factor_req(body: &[u8]) -> Result<(u64, usize, u32, Payload), FrameError> {
    if body.len() < 17 {
        return Err(bad("factor request header truncated"));
    }
    let id = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let n = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let dtype = Dtype::from_u8(body[12]).ok_or_else(|| bad("unknown dtype tag"))?;
    let deadline_us = u32::from_le_bytes(body[13..17].try_into().unwrap());
    let elems = &body[17..];
    if !elems.len().is_multiple_of(dtype.elem_bytes()) {
        return Err(bad("element section is not a whole number of elements"));
    }
    let payload = take_elems(elems, dtype, elems.len() / dtype.elem_bytes())?;
    Ok((id, n, deadline_us, payload))
}

/// Encodes a factorization reply body. `dtype` tags failure replies too
/// (they carry no elements) so the client can decode without pairing
/// state.
pub fn encode_factor_reply(reply: &FactorReply, dtype: Dtype) -> Vec<u8> {
    let (status, aux) = match &reply.outcome {
        Outcome::Factor(_) => (0u8, 0u32),
        Outcome::NotSpd { column } => (1, *column as u32),
        Outcome::NonFinite { column } => (2, *column as u32),
        // Backpressure gets its own status so the aux field is free to
        // carry the retry-after hint instead of the reason tag.
        Outcome::Rejected(RejectReason::Backpressure { retry_after_us }) => (5, *retry_after_us),
        Outcome::Rejected(reason) => (3, reason.to_u8() as u32),
        Outcome::WorkerCrashed => (4, 0),
        Outcome::ShardLost => (6, 0),
    };
    let mut body = Vec::new();
    body.extend_from_slice(&reply.id.to_le_bytes());
    body.push(status);
    body.push(dtype.to_u8());
    body.extend_from_slice(&aux.to_le_bytes());
    if let Outcome::Factor(payload) = &reply.outcome {
        debug_assert_eq!(payload.dtype(), dtype);
        put_elems(&mut body, payload);
    }
    body
}

/// Encodes a complete reply frame (length word, [`K_FACTOR_REPLY`] kind,
/// body) ready for a connection writer's `write_all`. The framing lives
/// here rather than in the server so every producer of reply bytes —
/// the connection reader, [`ReplySink::Frame`](crate::request::ReplySink)
/// delivery, and the workers' scratch fast path below — frames
/// identically.
pub fn reply_frame(reply: &FactorReply, dtype: Dtype) -> Vec<u8> {
    let body = encode_factor_reply(reply, dtype);
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.extend_from_slice(&((body.len() + 1) as u32).to_le_bytes());
    frame.push(K_FACTOR_REPLY);
    frame.extend_from_slice(&body);
    frame
}

/// Shared header+element framing for the success fast path: one
/// allocation sized exactly, elements appended straight from the
/// caller's (reused) scratch slice — no intermediate [`Payload`].
fn factor_ok_frame_raw(
    id: u64,
    dtype: Dtype,
    elem_bytes: usize,
    put: impl FnOnce(&mut Vec<u8>),
) -> Vec<u8> {
    let body_len = 14 + elem_bytes;
    let mut frame = Vec::with_capacity(5 + body_len);
    frame.extend_from_slice(&((body_len + 1) as u32).to_le_bytes());
    frame.push(K_FACTOR_REPLY);
    frame.extend_from_slice(&id.to_le_bytes());
    frame.push(0); // status: factor, elements follow
    frame.push(dtype.to_u8());
    frame.extend_from_slice(&0u32.to_le_bytes()); // aux
    put(&mut frame);
    frame
}

/// Encodes a successful `f32` factor reply frame directly from an element
/// slice. Byte-identical to
/// `reply_frame(&FactorReply { id, outcome: Factor(F32(elems.to_vec())) }, F32)`
/// (pinned by a test) without the owned payload.
pub fn factor_ok_frame_f32(id: u64, elems: &[f32]) -> Vec<u8> {
    factor_ok_frame_raw(id, Dtype::F32, elems.len() * 4, |out| {
        for x in elems {
            out.extend_from_slice(&x.to_le_bytes());
        }
    })
}

/// `f64` twin of [`factor_ok_frame_f32`].
pub fn factor_ok_frame_f64(id: u64, elems: &[f64]) -> Vec<u8> {
    factor_ok_frame_raw(id, Dtype::F64, elems.len() * 8, |out| {
        for x in elems {
            out.extend_from_slice(&x.to_le_bytes());
        }
    })
}

/// Decodes a factorization reply body.
pub fn decode_factor_reply(body: &[u8]) -> Result<FactorReply, FrameError> {
    if body.len() < 14 {
        return Err(bad("factor reply header truncated"));
    }
    let id = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let status = body[8];
    let dtype = Dtype::from_u8(body[9]).ok_or_else(|| bad("unknown dtype tag"))?;
    let aux = u32::from_le_bytes(body[10..14].try_into().unwrap());
    let elems = &body[14..];
    let outcome = match status {
        0 => {
            let count = elems.len() / dtype.elem_bytes();
            Outcome::Factor(take_elems(elems, dtype, count)?)
        }
        1 => Outcome::NotSpd {
            column: aux as usize,
        },
        2 => Outcome::NonFinite {
            column: aux as usize,
        },
        3 => Outcome::Rejected(
            RejectReason::from_u8(aux as u8).ok_or_else(|| bad("unknown reject reason"))?,
        ),
        4 => Outcome::WorkerCrashed,
        5 => Outcome::Rejected(RejectReason::Backpressure {
            retry_after_us: aux,
        }),
        6 => Outcome::ShardLost,
        other => return Err(bad(format!("unknown reply status {other}"))),
    };
    if status != 0 && !elems.is_empty() {
        return Err(bad("failure reply carries elements"));
    }
    Ok(FactorReply { id, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_req_round_trips_bitwise() {
        let payload = Payload::F32(vec![1.5, -0.0, f32::MIN_POSITIVE, 3.25e7]);
        let body = encode_factor_req(77, 2, 0, &payload);
        let (id, n, deadline_us, back) = decode_factor_req(&body).unwrap();
        assert_eq!((id, n, deadline_us), (77, 2, 0));
        assert_eq!(back, payload);

        let payload = Payload::F64(vec![std::f64::consts::PI; 9]);
        let body = encode_factor_req(u64::MAX, 3, 15_000, &payload);
        let (id, n, deadline_us, back) = decode_factor_req(&body).unwrap();
        assert_eq!((id, n, deadline_us), (u64::MAX, 3, 15_000));
        assert_eq!(back, payload);
    }

    #[test]
    fn factor_reply_round_trips_every_status() {
        let replies = [
            FactorReply {
                id: 1,
                outcome: Outcome::Factor(Payload::F32(vec![2.0, 0.5, 0.0, 1.25])),
            },
            FactorReply {
                id: 2,
                outcome: Outcome::NotSpd { column: 11 },
            },
            FactorReply {
                id: 3,
                outcome: Outcome::NonFinite { column: 0 },
            },
            FactorReply {
                id: 4,
                outcome: Outcome::Rejected(RejectReason::QueueFull),
            },
            FactorReply {
                id: 5,
                outcome: Outcome::Rejected(RejectReason::DeadlineExceeded),
            },
            FactorReply {
                id: 6,
                outcome: Outcome::WorkerCrashed,
            },
            FactorReply {
                id: 7,
                outcome: Outcome::Rejected(RejectReason::Backpressure {
                    retry_after_us: 1_500,
                }),
            },
            FactorReply {
                id: 8,
                outcome: Outcome::Rejected(RejectReason::Backpressure {
                    retry_after_us: u32::MAX,
                }),
            },
            FactorReply {
                id: 9,
                outcome: Outcome::ShardLost,
            },
        ];
        for reply in &replies {
            let body = encode_factor_reply(reply, Dtype::F32);
            let back = decode_factor_reply(&body).unwrap();
            assert_eq!(&back, reply);
        }
    }

    #[test]
    fn scratch_fast_path_frames_are_byte_identical() {
        // The workers' scratch encoding must be indistinguishable on the
        // wire from the generic payload-owning path.
        let f32s = vec![1.5f32, -0.0, f32::MIN_POSITIVE, 3.25e7];
        let via_payload = reply_frame(
            &FactorReply {
                id: 42,
                outcome: Outcome::Factor(Payload::F32(f32s.clone())),
            },
            Dtype::F32,
        );
        assert_eq!(factor_ok_frame_f32(42, &f32s), via_payload);

        let f64s = vec![std::f64::consts::PI, f64::MIN_POSITIVE, -7.0];
        let via_payload = reply_frame(
            &FactorReply {
                id: u64::MAX,
                outcome: Outcome::Factor(Payload::F64(f64s.clone())),
            },
            Dtype::F64,
        );
        assert_eq!(factor_ok_frame_f64(u64::MAX, &f64s), via_payload);
    }

    #[test]
    fn large_req_shares_the_factor_req_body() {
        // Kind 7 is kind 1's body under a different kind byte: the same
        // encoder/decoder pair serves both.
        let payload = Payload::F64(vec![2.0, 0.5, 0.5, 2.0]);
        let body = encode_factor_req(11, 2, 500, &payload);
        let mut wire = Vec::new();
        write_frame(&mut wire, K_LARGE_REQ, &body).unwrap();
        let (kind, back) = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(kind, K_LARGE_REQ);
        let (id, n, deadline_us, p) = decode_factor_req(&back).unwrap();
        assert_eq!((id, n, deadline_us), (11, 2, 500));
        assert_eq!(p, payload);
    }

    #[test]
    fn backpressure_reply_with_elements_is_malformed() {
        let reply = FactorReply {
            id: 9,
            outcome: Outcome::Rejected(RejectReason::Backpressure { retry_after_us: 10 }),
        };
        let mut body = encode_factor_reply(&reply, Dtype::F32);
        body.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(matches!(
            decode_factor_reply(&body),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn wire_deadline_never_rounds_a_real_deadline_to_none() {
        // `0` is reserved for "no deadline": a sub-microsecond remaining
        // deadline must clamp *up* to 1 µs, not truncate down to
        // immortality.
        assert_eq!(wire_deadline_us(None), 0);
        assert_eq!(wire_deadline_us(Some(Duration::ZERO)), 1);
        assert_eq!(wire_deadline_us(Some(Duration::from_nanos(1))), 1);
        assert_eq!(wire_deadline_us(Some(Duration::from_nanos(999))), 1);
        assert_eq!(wire_deadline_us(Some(Duration::from_micros(1))), 1);
        assert_eq!(wire_deadline_us(Some(Duration::from_micros(250))), 250);
        // And the far end saturates instead of wrapping.
        assert_eq!(
            wire_deadline_us(Some(Duration::from_secs(10_000_000))),
            u32::MAX
        );
    }

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, K_STATS_REQ, &[]).unwrap();
        write_frame(
            &mut wire,
            K_FACTOR_REQ,
            &encode_factor_req(9, 1, 0, &Payload::F32(vec![4.0])),
        )
        .unwrap();
        write_frame(&mut wire, K_SHUTDOWN, &[]).unwrap();
        let mut r = wire.as_slice();
        let (k1, b1) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((k1, b1.len()), (K_STATS_REQ, 0));
        let (k2, b2) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(k2, K_FACTOR_REQ);
        assert_eq!(decode_factor_req(&b2).unwrap().0, 9);
        let (k3, _) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(k3, K_SHUTDOWN);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Oversized length word.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::Malformed(_))
        ));
        // Zero-length frame.
        let wire = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::Malformed(_))
        ));
        // Garbage bodies.
        assert!(decode_factor_req(&[0; 5]).is_err());
        assert!(decode_factor_reply(&[0; 5]).is_err());
        let mut body = encode_factor_req(1, 2, 0, &Payload::F32(vec![0.0; 4]));
        body.truncate(body.len() - 1);
        assert!(decode_factor_req(&body).is_err());
    }

    #[test]
    fn torn_frames_are_typed_not_clean_eof() {
        // EOF inside the body: Torn, not Ok(None) and not Malformed.
        let mut wire = Vec::new();
        write_frame(&mut wire, K_FACTOR_REQ, &[1, 2, 3]).unwrap();
        wire.truncate(wire.len() - 2);
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Torn { context }) => assert_eq!(context, "frame body"),
            other => panic!("expected torn body, got {other:?}"),
        }
        // EOF after the length word but before the kind byte.
        let wire = 5u32.to_le_bytes();
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Torn { context }) => assert_eq!(context, "kind byte"),
            other => panic!("expected torn kind, got {other:?}"),
        }
        // A torn error converts to an UnexpectedEof io::Error for callers
        // that flatten into io::Result.
        let e: io::Error = FrameError::Torn { context: "x" }.into();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }
}
