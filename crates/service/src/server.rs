//! std::net TCP front-end: accepts connections, decodes request frames,
//! submits them through a [`Frontend`] — a single service's
//! [`Client`](crate::service::Client) or a
//! [`RouterClient`](crate::router::RouterClient) fronting a sharded
//! fleet — and streams replies back as they complete (replies may
//! reorder relative to requests; the caller correlates by id).
//!
//! Per connection: the accept loop spawns a reader thread (decodes and
//! submits) and a writer thread (serializes reply frames through an mpsc
//! channel — worker threads finish batches concurrently, and a reply
//! frame must hit the socket atomically). A `shutdown` frame triggers a
//! *graceful drain*: admission stops, every already-admitted request is
//! answered, then the ack goes out and the accept loop stops.
//!
//! Failure containment: a malformed or torn frame ([`FrameError`]) costs
//! exactly the connection it arrived on — the accept loop keeps serving
//! everyone else. The [`FaultHook`] threads chaos-harness faults
//! (connection drops, frame corruption/truncation, write stalls) through
//! the same paths production errors take.

use crate::codec::{
    decode_factor_req, read_frame, write_frame, FrameError, K_FACTOR_REPLY, K_FACTOR_REQ,
    K_LARGE_REQ, K_SHUTDOWN, K_SHUTDOWN_ACK, K_STATS_REPLY, K_STATS_REQ,
};
use crate::fault::{FaultAction, FaultHook, FaultSite};
use crate::request::{FactorReply, ReplySink};
use crate::service::Frontend;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest a graceful drain waits for in-flight requests before acking
/// shutdown anyway (replies still flush as they finish).
const DRAIN_WAIT_CAP: Duration = Duration::from_secs(30);

/// Writes one reply frame, first applying any scheduled write-side fault:
/// corruption flips the kind byte (so the peer *detects* it instead of
/// accepting garbage elements), truncation sends half the frame then
/// kills the socket, a drop kills it outright.
fn send_one(
    w: &mut BufWriter<TcpStream>,
    raw: &TcpStream,
    mut frame: Vec<u8>,
    hook: &FaultHook,
) -> io::Result<()> {
    match hook.check(FaultSite::ConnWrite) {
        Some(FaultAction::CorruptFrame) => {
            if frame.len() > 4 {
                frame[4] ^= 0x55;
            }
        }
        Some(FaultAction::TruncateFrame) => {
            w.write_all(&frame[..frame.len() / 2])?;
            w.flush()?;
            raw.shutdown(Shutdown::Both).ok();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected frame truncation",
            ));
        }
        Some(FaultAction::DropConn) => {
            raw.shutdown(Shutdown::Both).ok();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected connection drop",
            ));
        }
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::PanicWorker)
        | Some(FaultAction::KillShard)
        | Some(FaultAction::KillProcess)
        | None => {}
    }
    w.write_all(&frame)
}

/// Serializes reply frames onto the socket. Batches consecutive pending
/// frames into one flush.
fn writer_loop(stream: TcpStream, rx: Receiver<Vec<u8>>, hook: FaultHook) -> io::Result<()> {
    let mut w = BufWriter::new(stream.try_clone()?);
    while let Ok(frame) = rx.recv() {
        send_one(&mut w, &stream, frame, &hook)?;
        while let Ok(more) = rx.try_recv() {
            send_one(&mut w, &stream, more, &hook)?;
        }
        w.flush()?;
    }
    Ok(())
}

/// Reads frames off one connection until EOF, error, or shutdown.
/// Returns `true` if this connection requested server shutdown. Any
/// [`FrameError`] (torn frame, malformed body) surfaces as the `Err`
/// branch and closes only this connection.
fn conn_loop<F: Frontend>(stream: TcpStream, client: F, hook: FaultHook) -> io::Result<bool> {
    let out_stream = stream.try_clone()?;
    let ctrl = stream.try_clone()?;
    let (tx, rx) = channel::<Vec<u8>>();
    let writer = {
        let hook = hook.clone();
        std::thread::Builder::new()
            .name("ibcf-conn-writer".into())
            .spawn(move || writer_loop(out_stream, rx, hook))
            .map_err(|e| io::Error::other(format!("spawn connection writer: {e}")))?
    };
    let mut r = BufReader::new(stream);
    let mut shutdown = false;
    let result = loop {
        if let Some(FaultAction::DropConn) = hook.check(FaultSite::ConnRead) {
            ctrl.shutdown(Shutdown::Both).ok();
            break Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected connection drop (read side)",
            ));
        }
        let (kind, body) = match read_frame(&mut r) {
            Ok(Some(frame)) => frame,
            Ok(None) => break Ok(()), // clean EOF at a frame boundary
            Err(e @ (FrameError::Torn { .. } | FrameError::Malformed(_))) => {
                // One bad peer costs one connection, never the server.
                break Err(e.into());
            }
            Err(FrameError::Io(e)) => break Err(e),
        };
        match kind {
            K_FACTOR_REQ | K_LARGE_REQ => {
                let (id, n, deadline_us, payload) =
                    decode_factor_req(&body).map_err(io::Error::from)?;
                let dtype = payload.dtype();
                let deadline = (deadline_us > 0)
                    .then(|| Instant::now() + Duration::from_micros(u64::from(deadline_us)));
                // A frame sink: workers encode the reply bytes (for
                // success, straight from their gather scratch) and the
                // writer thread owns the socket. Send failure =
                // connection gone; the reply is dropped with it.
                let sink = ReplySink::frame(tx.clone(), dtype);
                if kind == K_LARGE_REQ {
                    // Former bypass: large matrices are scheduled on the
                    // task-graph pool, never packed into a batch.
                    client.submit_large_sink(id, n, payload, deadline, sink);
                } else {
                    // Non-blocking admission: a full queue answers with a
                    // QueueFull rejection frame instead of stalling the
                    // reader (which would deadlock a pipelining client).
                    client.submit_sink(id, n, payload, deadline, sink, false);
                }
            }
            K_STATS_REQ => {
                let snap = client.stats();
                let json = serde_json::to_string(&snap)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let mut frame = Vec::with_capacity(5 + json.len());
                frame.extend_from_slice(&((json.len() + 1) as u32).to_le_bytes());
                frame.push(K_STATS_REPLY);
                frame.extend_from_slice(json.as_bytes());
                let _ = tx.send(frame);
            }
            K_SHUTDOWN => {
                // Graceful drain: stop admission, answer everything that
                // was already admitted, then ack. Replies for other
                // connections flush through their own writers.
                client.begin_drain();
                let t0 = Instant::now();
                while !client.drained() && t0.elapsed() < DRAIN_WAIT_CAP {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let _ = tx.send(vec![1, 0, 0, 0, K_SHUTDOWN_ACK]);
                shutdown = true;
                break Ok(());
            }
            other => {
                break Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame kind {other}"),
                ));
            }
        }
    };
    drop(tx);
    // Writer errors (including injected drops) were already terminal for
    // the connection; joining must still succeed.
    let _ = writer
        .join()
        .map_err(|_| io::Error::other("connection writer panicked"))?;
    result.map(|()| shutdown)
}

/// The TCP front-end. Owns the listener; [`TcpServer::run`] blocks until
/// a client sends a shutdown frame (or [`TcpServer::stop_flag`] is
/// flagged from another thread).
pub struct TcpServer {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(TcpServer {
            listener,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (reports the real port after binding to port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops the accept loop when set from another thread.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// [`TcpServer::run_with_faults`] with the injector disabled.
    pub fn run<F: Frontend>(&self, client: F) -> io::Result<()> {
        self.run_with_faults(client, FaultHook::disabled())
    }

    /// Accepts and serves connections until a shutdown frame arrives or
    /// the stop flag is set. Returns once every connection thread joined,
    /// leaving the frontend itself to the caller to shut down. The hook
    /// injects connection-level faults on every accepted stream.
    pub fn run_with_faults<F: Frontend>(&self, client: F, hook: FaultHook) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        // Clones of every accepted stream, so the drain path below can
        // wake readers idling in a blocking read.
        let registry: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nodelay(true).ok();
                    if let Ok(clone) = stream.try_clone() {
                        registry.lock().unwrap().push(clone);
                    }
                    let client = client.clone();
                    let stop = self.stop.clone();
                    let hook = hook.clone();
                    let handle = std::thread::Builder::new()
                        .name("ibcf-conn".into())
                        .spawn(move || {
                            match conn_loop(stream, client, hook) {
                                Ok(true) => stop.store(true, Ordering::SeqCst),
                                Ok(false) => {}
                                // A broken connection kills itself, not
                                // the server.
                                Err(_) => {}
                            }
                        })
                        .expect("spawn connection thread");
                    conns.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        // Give idle connections an EOF (shutting down only the read half
        // lets their writers flush any reply still in flight), so every
        // reader unblocks and its thread joins.
        for stream in registry.lock().unwrap().drain(..) {
            stream.shutdown(Shutdown::Read).ok();
        }
        for handle in conns {
            handle
                .join()
                .map_err(|_| io::Error::other("connection thread panicked"))?;
        }
        Ok(())
    }
}

/// A blocking TCP client for tests and the load generator: one stream,
/// frames written directly, replies read by the caller.
pub struct TcpConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpConn {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> io::Result<TcpConn> {
        TcpConn::connect_with_timeout(addr, Duration::from_secs(60))
    }

    /// Connects with an explicit read timeout (a stuck server must fail
    /// a test, not hang it; chaos clients use a short timeout to detect
    /// stalled connections quickly).
    pub fn connect_with_timeout(addr: &str, read_timeout: Duration) -> io::Result<TcpConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(read_timeout))?;
        let writer = stream.try_clone()?;
        Ok(TcpConn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends a factorization request frame. `deadline_us` is the relative
    /// deadline in microseconds (0 = none).
    pub fn send_factor_req(
        &mut self,
        id: u64,
        n: usize,
        deadline_us: u32,
        payload: &crate::request::Payload,
    ) -> io::Result<()> {
        let body = crate::codec::encode_factor_req(id, n, deadline_us, payload);
        write_frame(&mut self.writer, K_FACTOR_REQ, &body)
    }

    /// Sends a large-matrix request frame (same body as a factor
    /// request; the kind routes it past the former onto the task-graph
    /// worker pool).
    pub fn send_large_req(
        &mut self,
        id: u64,
        n: usize,
        deadline_us: u32,
        payload: &crate::request::Payload,
    ) -> io::Result<()> {
        let body = crate::codec::encode_factor_req(id, n, deadline_us, payload);
        write_frame(&mut self.writer, K_LARGE_REQ, &body)
    }

    /// Sends a stats request frame.
    pub fn send_stats_req(&mut self) -> io::Result<()> {
        write_frame(&mut self.writer, K_STATS_REQ, &[])
    }

    /// Sends a shutdown frame.
    pub fn send_shutdown(&mut self) -> io::Result<()> {
        write_frame(&mut self.writer, K_SHUTDOWN, &[])
    }

    /// Reads the next frame (`None` on clean EOF).
    pub fn read(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        read_frame(&mut self.reader).map_err(io::Error::from)
    }

    /// Reads frames until the next factor reply (stats frames in between
    /// are an error here — use typed readers in interleaved protocols).
    pub fn read_factor_reply(&mut self) -> io::Result<FactorReply> {
        match self.read()? {
            Some((K_FACTOR_REPLY, body)) => {
                crate::codec::decode_factor_reply(&body).map_err(io::Error::from)
            }
            Some((kind, _)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected factor reply, got frame kind {kind}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )),
        }
    }

    /// Requests and decodes a stats snapshot.
    pub fn fetch_stats(&mut self) -> io::Result<crate::stats::StatsSnapshot> {
        self.send_stats_req()?;
        match self.read()? {
            Some((K_STATS_REPLY, body)) => {
                let text = std::str::from_utf8(&body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                serde_json::from_str(text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            Some((kind, _)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats reply, got frame kind {kind}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before stats reply",
            )),
        }
    }

    /// Sends shutdown and waits for the ack (the server drains first, so
    /// the ack can take a moment under load).
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send_shutdown()?;
        match self.read()? {
            Some((K_SHUTDOWN_ACK, _)) => Ok(()),
            Some((kind, _)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected shutdown ack, got frame kind {kind}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before shutdown ack",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineSelector;
    use crate::request::{Outcome, Payload, RejectReason};
    use crate::service::{Service, ServiceConfig};

    fn start_server() -> (Service, std::net::SocketAddr, JoinHandle<io::Result<()>>) {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let client = service.client();
        let handle = std::thread::spawn(move || server.run(client));
        (service, addr, handle)
    }

    #[test]
    fn tcp_round_trip_factor_stats_shutdown() {
        let (service, addr, server) = start_server();
        let mut conn = TcpConn::connect(&addr.to_string()).unwrap();

        // A 2×2 SPD matrix with a known exact factor: [[4,2],[2,5]] →
        // L = [[2,0],[1,2]].
        let a = Payload::F32(vec![4.0, 2.0, 2.0, 5.0]);
        conn.send_factor_req(123, 2, 0, &a).unwrap();
        let reply = conn.read_factor_reply().unwrap();
        assert_eq!(reply.id, 123);
        let Outcome::Factor(Payload::F32(l)) = reply.outcome else {
            panic!("expected factor, got {:?}", reply.outcome);
        };
        assert_eq!(l, vec![2.0, 1.0, 2.0, 2.0]); // upper 2.0 = input, untouched

        // Malformed request is rejected, not dropped.
        conn.send_factor_req(124, 3, 0, &Payload::F32(vec![1.0; 4]))
            .unwrap();
        let reply = conn.read_factor_reply().unwrap();
        assert_eq!(reply.id, 124);
        assert!(matches!(reply.outcome, Outcome::Rejected(_)));

        let stats = conn.fetch_stats().unwrap();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.replies_ok, 1);

        conn.shutdown_server().unwrap();
        server.join().unwrap().unwrap();
        service.shutdown();
    }

    #[test]
    fn concurrent_connections_each_get_their_own_replies() {
        let (service, addr, server) = start_server();
        let workers: Vec<_> = (0..4u64)
            .map(|c| {
                let addr = addr.to_string();
                std::thread::spawn(move || {
                    let mut conn = TcpConn::connect(&addr).unwrap();
                    for i in 0..8u64 {
                        let id = c * 100 + i;
                        let a = Payload::F64(vec![4.0, 2.0, 2.0, 5.0]);
                        conn.send_factor_req(id, 2, 0, &a).unwrap();
                    }
                    let mut seen: Vec<u64> = (0..8)
                        .map(|_| {
                            let reply = conn.read_factor_reply().unwrap();
                            assert!(reply.outcome.is_ok());
                            reply.id
                        })
                        .collect();
                    seen.sort_unstable();
                    let want: Vec<u64> = (0..8).map(|i| c * 100 + i).collect();
                    assert_eq!(seen, want, "conn {c} got someone else's replies");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let mut conn = TcpConn::connect(&addr.to_string()).unwrap();
        conn.shutdown_server().unwrap();
        server.join().unwrap().unwrap();
        let snap = service.shutdown();
        assert_eq!(snap.replies_ok, 32);
    }

    #[test]
    fn routed_fleet_serves_tcp_and_backpressure_is_honored_end_to_end() {
        use crate::loadgen::{self, ArrivalMode, LoadgenConfig};
        use crate::router::{InProcessShard, Router, RouterConfig, ShardBackend};

        // Two shards with tiny ingest queues: a 48-deep closed-loop
        // window must overflow them, so the router hands out real
        // Backpressure { retry_after_us } rejects and the load
        // generator's retry loop has to honor the hints for the run to
        // finish with nothing lost.
        let shards: Vec<Arc<dyn ShardBackend>> = (0..2)
            .map(|i| {
                let service = Service::start(
                    ServiceConfig {
                        queue_cap: 2,
                        max_delay: Duration::from_millis(2),
                        ..ServiceConfig::default()
                    },
                    EngineSelector::heuristic(),
                );
                Arc::new(InProcessShard::new(format!("shard-{i}"), service))
                    as Arc<dyn ShardBackend>
            })
            .collect();
        let router = Router::start(
            shards,
            RouterConfig {
                retry_after_us: 300,
                ..RouterConfig::default()
            },
        );
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let client = router.client();
        let handle = std::thread::spawn(move || server.run(client));

        let report = loadgen::run(&LoadgenConfig {
            addr: addr.to_string(),
            sizes: vec![4, 6],
            requests: 400,
            conns: 2,
            mode: ArrivalMode::Closed { window: 48 },
            seed: 11,
            ..LoadgenConfig::default()
        })
        .unwrap();

        assert!(report.clean(), "fleet run not clean:\n{}", report.render());
        assert_eq!(report.lost, 0);
        assert_eq!(report.duplicates, 0);
        assert!(
            report.backpressured > 0,
            "tiny shard queues under a deep window must backpressure:\n{}",
            report.render()
        );
        let shard_stats = report.server.shards.as_ref().expect("fleet breakdown");
        assert_eq!(shard_stats.len(), 2);
        let rendered = report.render();
        assert!(
            rendered.contains("shard-0") && rendered.contains("fleet:"),
            "report must show per-shard lines and fleet totals:\n{rendered}"
        );

        let mut conn = TcpConn::connect(&addr.to_string()).unwrap();
        conn.shutdown_server().unwrap();
        handle.join().unwrap().unwrap();
        let snap = router.shutdown();
        assert_eq!(
            snap.shards.expect("final fleet snapshot").len(),
            2,
            "shutdown snapshot keeps the shard breakdown"
        );
    }

    #[test]
    fn torn_frame_closes_one_connection_not_the_server() {
        // Regression for the unwrap()-on-bad-frame class of crash: a peer
        // that dies mid-frame (or sends garbage) must cost exactly its
        // own connection; the accept loop keeps serving everyone else.
        let (service, addr, server) = start_server();

        // Half a frame: a length word promising 64 bytes, then silence.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&64u32.to_le_bytes()).unwrap();
            s.write_all(&[K_FACTOR_REQ, 1, 2, 3]).unwrap();
            // Dropped here: mid-frame EOF on the server's reader.
        }
        // Garbage that parses as an unknown frame kind.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&2u32.to_le_bytes()).unwrap();
            s.write_all(&[0xEE, 0xEE]).unwrap();
        }

        // The server still serves a healthy connection afterwards.
        let mut conn = TcpConn::connect(&addr.to_string()).unwrap();
        let a = Payload::F32(vec![4.0, 2.0, 2.0, 5.0]);
        conn.send_factor_req(7, 2, 0, &a).unwrap();
        let reply = conn.read_factor_reply().unwrap();
        assert_eq!(reply.id, 7);
        assert!(reply.outcome.is_ok());

        conn.shutdown_server().unwrap();
        server.join().unwrap().unwrap();
        service.shutdown();
    }

    #[test]
    fn near_zero_deadline_is_shed_not_served_unbounded() {
        // Regression: the wire reserves `deadline_us = 0` for "no
        // deadline", so a remaining deadline that rounds below 1 µs used
        // to encode as 0 and silently become immortal. It must instead
        // clamp up to 1 µs and come back as a typed DeadlineExceeded —
        // shed, never served unbounded.
        let (service, addr, server) = start_server();
        let mut conn = TcpConn::connect(&addr.to_string()).unwrap();
        let a = Payload::F32(vec![4.0, 2.0, 2.0, 5.0]);
        let wire = crate::codec::wire_deadline_us(Some(Duration::from_nanos(1)));
        assert_eq!(wire, 1, "sub-µs deadline must clamp up, not truncate");
        conn.send_factor_req(42, 2, wire, &a).unwrap();
        let reply = conn.read_factor_reply().unwrap();
        assert_eq!(reply.id, 42);
        assert_eq!(
            reply.outcome,
            Outcome::Rejected(RejectReason::DeadlineExceeded),
            "a ~0-remaining deadline must be shed"
        );
        conn.shutdown_server().unwrap();
        server.join().unwrap().unwrap();
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_inflight_requests_before_acking() {
        let (service, addr, server) = start_server();
        let mut conn = TcpConn::connect(&addr.to_string()).unwrap();
        let a = Payload::F32(vec![4.0, 2.0, 2.0, 5.0]);
        // Pipeline a burst, then shutdown on the same connection: the
        // server reads the frames in order, so all 64 are admitted before
        // the drain starts, and the drain must answer every one before
        // the ack goes out.
        for id in 0..64u64 {
            conn.send_factor_req(id, 2, 0, &a).unwrap();
        }
        conn.send_shutdown().unwrap();
        for _ in 0..64 {
            let reply = conn.read_factor_reply().unwrap();
            assert!(reply.outcome.is_ok());
        }
        // Only after all 64 replies: the ack.
        match conn.read().unwrap() {
            Some((K_SHUTDOWN_ACK, _)) => {}
            other => panic!("expected shutdown ack after the drain, got {other:?}"),
        }
        server.join().unwrap().unwrap();
        let snap = service.shutdown();
        assert_eq!(snap.replies_ok, 64);
    }

    /// Mixed small (batched) and large (task-graph) traffic over one
    /// real TCP connection, with the worker-panic chaos plan firing on
    /// both worker pools (they share [`FaultSite::WorkerBatch`]): every
    /// request must get exactly one typed reply, and the large replies
    /// must carry a correct in-place factor.
    #[test]
    fn mixed_small_and_large_tcp_traffic_survives_worker_panics() {
        use crate::fault::{FaultHook, FaultPlan};
        use std::collections::HashMap;

        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                fault: FaultHook::from_plan(FaultPlan::worker_panic(11)),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let client = service.client();
        let handle = std::thread::spawn(move || server.run(client));

        let mut conn = TcpConn::connect(&addr.to_string()).unwrap();
        let small = Payload::F64(vec![4.0, 2.0, 2.0, 5.0]);
        let ln = 48usize;
        let large = {
            let mut a = vec![0.0f64; ln * ln];
            for d in 0..ln {
                a[d * ln + d] = 2.0 * ln as f64;
            }
            for c in 0..ln {
                for r in (c + 1)..ln {
                    a[c * ln + r] = 1.0;
                    a[r * ln + c] = 1.0;
                }
            }
            Payload::F64(a)
        };
        // Interleave: every 8th request is large.
        let total = 48u64;
        let mut large_ids = Vec::new();
        for id in 0..total {
            if id % 8 == 3 {
                conn.send_large_req(id, ln, 0, &large).unwrap();
                large_ids.push(id);
            } else {
                conn.send_factor_req(id, 2, 0, &small).unwrap();
            }
        }
        let mut seen: HashMap<u64, Outcome> = HashMap::new();
        for _ in 0..total {
            let reply = conn.read_factor_reply().unwrap();
            assert!(
                seen.insert(reply.id, reply.outcome).is_none(),
                "id {} answered twice",
                reply.id
            );
        }
        assert_eq!(seen.len() as u64, total, "exactly one reply per request");
        let mut crashed = 0u64;
        for (id, outcome) in &seen {
            match outcome {
                Outcome::Factor(Payload::F64(l)) if large_ids.contains(id) => {
                    // Spot-check the in-place factor: L·Lᵀ ≈ A on the
                    // first column, strict upper untouched.
                    let a0 = 2.0 * ln as f64;
                    assert!((l[0] * l[0] - a0).abs() < 1e-9 * a0);
                    assert_eq!(l[ln], 1.0, "strict upper must be input, untouched");
                }
                Outcome::Factor(_) => {}
                Outcome::WorkerCrashed => crashed += 1,
                other => panic!("id {id}: unexpected outcome {other:?}"),
            }
        }
        // Counters bump *after* sink delivery, so the last reply can
        // race its own ledger entry by a beat: poll briefly.
        let t0 = Instant::now();
        let stats = loop {
            let s = conn.fetch_stats().unwrap();
            if s.replies_ok + s.replies_failed == total || t0.elapsed() > Duration::from_secs(5) {
                break s;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(stats.large_requests, large_ids.len() as u64);
        assert_eq!(stats.requests, total);
        assert_eq!(stats.replies_ok + stats.replies_failed, total);
        assert_eq!(stats.replies_failed, crashed);

        conn.shutdown_server().unwrap();
        handle.join().unwrap().unwrap();
        service.shutdown();
    }
}
