//! Process-isolated shard fleet: OS-level crash recovery.
//!
//! The in-process router ([`crate::router`]) proves failover logic, but
//! every shard still shares one address space — a worker panic is
//! catchable, a segfault or OOM kill is not. This module moves each
//! shard into a real **child process** (`ibcf serve --shard-child`): the
//! supervisor spawns it, reads its ephemeral listen address from a
//! one-line stdout handshake, and fronts it with a [`TcpShard`] so the
//! router routes to it like any remote shard.
//!
//! Failure model (MODEL.md §18):
//!
//! - **Crash detection** is double-sourced: the supervisor reaps child
//!   exits with `try_wait` (authoritative — a SIGKILL is visible here
//!   within one supervision round), and the router's health probes see
//!   the connection refuse (fast path for routing decisions).
//! - **In-flight loss**: when the process dies, its connection's reader
//!   hits EOF and answers every orphaned request with a typed
//!   [`Outcome::ShardLost`](crate::request::Outcome::ShardLost); the
//!   router transparently resubmits the first loss to a healthy shard.
//! - **Respawn** follows the shared [`RetryPolicy`] equal-jitter
//!   backoff, capped, forever — whether to give up on a shard is an
//!   operator decision, not the supervisor's. A respawned child gets a
//!   fresh ephemeral port; the slot's [`TcpShard`] is swapped under the
//!   shard lock so routing flips over atomically.
//! - **Graceful drain** ([`ProcessShard::shutdown`]): final stats are
//!   fetched and cached, the child gets a shutdown frame and drains,
//!   and the supervisor reaps it with a bounded wait — SIGKILL only if
//!   the child ignores the protocol. `ibcf serve --shards N` therefore
//!   never leaks orphan processes.
//! - The chaos harness SIGKILLs live children deterministically through
//!   [`FaultSite::ShardProcess`] / [`FaultAction::KillProcess`],
//!   refusing to kill the last live process so the fleet always
//!   retains capacity.

use crate::fault::{FaultAction, FaultHook, FaultSite};
use crate::request::{Payload, ReplySink};
use crate::retry::RetryPolicy;
use crate::router::{ShardBackend, SubmitRefusal, TcpShard};
use crate::server::TcpConn;
use crate::stats::StatsSnapshot;
use std::io::{self, BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The stdout handshake prefix a `--shard-child` prints once its
/// listener is bound; the rest of the line is the `host:port` to dial.
pub const SHARD_READY_PREFIX: &str = "shard-child listening on ";

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The shard-child executable (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments handed to every child; must put it into shard-child
    /// mode (bind an ephemeral port, print the handshake, serve).
    pub child_args: Vec<String>,
    /// Number of shard processes.
    pub shards: usize,
    /// Backoff between respawn attempts for a shard that keeps dying.
    pub respawn: RetryPolicy,
    /// Fault hook for deterministic process kills
    /// ([`FaultSite::ShardProcess`]); ticks once per shard per
    /// supervision round.
    pub fault: FaultHook,
    /// Supervision round cadence (liveness reap + respawn + fault tick).
    pub interval: Duration,
}

impl FleetConfig {
    /// A fleet of `shards` children of `program` with default child
    /// arguments (`serve --shard-child`), respawn backoff, no faults,
    /// and a 5 ms supervision cadence.
    pub fn new(program: PathBuf, shards: usize) -> FleetConfig {
        FleetConfig {
            program,
            child_args: vec!["serve".into(), "--shard-child".into()],
            shards,
            respawn: RetryPolicy::reconnect(0x0F1EE7),
            fault: FaultHook::disabled(),
            interval: Duration::from_millis(5),
        }
    }
}

/// Spawns one shard child and reads its listen-address handshake from
/// stdout. The remaining stdout is drained by a detached thread so the
/// child can never block on a full pipe.
fn spawn_child(program: &PathBuf, args: &[String]) -> io::Result<(Child, String)> {
    let mut child = Command::new(program)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "shard child exited before printing its listen address",
            ));
        }
        if let Some(rest) = line.trim().strip_prefix(SHARD_READY_PREFIX) {
            break rest.to_string();
        }
    };
    std::thread::Builder::new()
        .name("ibcf-shard-stdout".into())
        .spawn(move || {
            let _ = io::copy(&mut reader, &mut io::sink());
        })
        .expect("spawn shard stdout drain");
    Ok((child, addr))
}

struct ProcState {
    child: Option<Child>,
    /// The live connection front for the current child generation.
    tcp: Option<Arc<TcpShard>>,
    /// Address of the current (or last) child generation.
    addr: String,
    /// Consecutive failed respawn attempts; resets on success.
    attempt: u32,
    /// Earliest instant the next respawn attempt is allowed.
    next_spawn_at: Option<Instant>,
}

/// One shard living in a child OS process, fronted by a [`TcpShard`]
/// that is swapped atomically when the supervisor respawns the child.
pub struct ProcessShard {
    name: String,
    state: Mutex<ProcState>,
    /// Admission stopped for good (drain/shutdown), no more respawns.
    killed: AtomicBool,
    /// Times the supervisor replaced a dead child with a fresh one.
    respawns: AtomicU64,
    /// Last successfully fetched stats snapshot; served when the child
    /// is unreachable (mid-respawn, or after shutdown).
    last_stats: Mutex<StatsSnapshot>,
}

impl ProcessShard {
    fn launch(name: String, cfg: &FleetConfig) -> io::Result<Arc<ProcessShard>> {
        let (child, addr) = spawn_child(&cfg.program, &cfg.child_args)?;
        let tcp = Arc::new(TcpShard::new(format!("{name}-conn"), addr.clone()));
        Ok(Arc::new(ProcessShard {
            name,
            state: Mutex::new(ProcState {
                child: Some(child),
                tcp: Some(tcp),
                addr,
                attempt: 0,
                next_spawn_at: None,
            }),
            killed: AtomicBool::new(false),
            respawns: AtomicU64::new(0),
            last_stats: Mutex::new(StatsSnapshot::default()),
        }))
    }

    /// OS pid of the current child, if one is running.
    pub fn child_pid(&self) -> Option<u32> {
        self.state.lock().unwrap().child.as_ref().map(|c| c.id())
    }

    /// Times the supervisor respawned this shard's process.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    fn conn(&self) -> Option<Arc<TcpShard>> {
        self.state.lock().unwrap().tcp.clone()
    }

    /// `true` while the child process exists and has not exited.
    fn child_alive(&self) -> bool {
        match self.state.lock().unwrap().child.as_mut() {
            Some(c) => matches!(c.try_wait(), Ok(None)),
            None => false,
        }
    }

    /// SIGKILLs the current child (the deterministic process fault).
    /// Returns `true` if a live child was killed.
    fn kill_child(&self) -> bool {
        match self.state.lock().unwrap().child.as_mut() {
            Some(c) => matches!(c.try_wait(), Ok(None)) && c.kill().is_ok(),
            None => false,
        }
    }

    /// One supervision step: if the child died, reap it and (backoff
    /// permitting) spawn a replacement, swapping the connection front.
    fn respawn_if_dead(&self, cfg: &FleetConfig) {
        if self.killed.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.state.lock().unwrap();
            if let Some(c) = st.child.as_mut() {
                if matches!(c.try_wait(), Ok(None)) {
                    return;
                }
                // Exited (or unwaitable): reap the zombie now so the
                // pid leaves the process table even if respawn waits.
                if let Some(mut c) = st.child.take() {
                    let _ = c.wait();
                }
            }
            if let Some(t) = st.next_spawn_at {
                if Instant::now() < t {
                    return;
                }
            }
        }
        // Spawn outside the lock: the handshake read blocks, and submits
        // only need the lock for a moment to clone the connection front.
        match spawn_child(&cfg.program, &cfg.child_args) {
            Ok((child, addr)) => {
                let tcp = Arc::new(TcpShard::new(format!("{}-conn", self.name), addr.clone()));
                let old = {
                    let mut st = self.state.lock().unwrap();
                    let old = st.tcp.replace(tcp);
                    st.child = Some(child);
                    st.addr = addr;
                    st.attempt = 0;
                    st.next_spawn_at = None;
                    old
                };
                // Reap the dead generation's reader; its EOF drain
                // already answered in-flight requests with ShardLost.
                if let Some(old) = old {
                    old.shutdown();
                }
                self.respawns.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let mut st = self.state.lock().unwrap();
                st.attempt += 1;
                st.next_spawn_at = Some(Instant::now() + cfg.respawn.backoff(st.attempt));
            }
        }
    }
}

impl ShardBackend for ProcessShard {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        use crate::request::RejectReason;
        if self.killed.load(Ordering::SeqCst) {
            return Err((RejectReason::ShuttingDown, payload, sink));
        }
        match self.conn() {
            Some(tcp) => tcp.try_submit(id, n, payload, deadline, sink),
            None => Err((RejectReason::ShuttingDown, payload, sink)),
        }
    }

    fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        use crate::request::RejectReason;
        if self.killed.load(Ordering::SeqCst) {
            return Err((RejectReason::ShuttingDown, payload, sink));
        }
        match self.conn() {
            Some(tcp) => tcp.try_submit_large(id, n, payload, deadline, sink),
            None => Err((RejectReason::ShuttingDown, payload, sink)),
        }
    }

    fn probe(&self) -> bool {
        if self.killed.load(Ordering::SeqCst) {
            return false;
        }
        self.conn().is_some_and(|t| t.probe())
    }

    fn load(&self) -> usize {
        self.conn().map_or(0, |t| t.load())
    }

    fn stats(&self) -> StatsSnapshot {
        let addr = self.state.lock().unwrap().addr.clone();
        if !addr.is_empty() {
            let fetched = TcpConn::connect_with_timeout(&addr, Duration::from_secs(2))
                .and_then(|mut c| c.fetch_stats());
            if let Ok(snap) = fetched {
                *self.last_stats.lock().unwrap() = snap.clone();
                return snap;
            }
        }
        self.last_stats.lock().unwrap().clone()
    }

    fn kill(&self) {
        // Graceful: stop admission and respawns, but leave the child —
        // and the connection — alive so admitted work still drains back
        // through the pending map.
        self.killed.store(true, Ordering::SeqCst);
    }

    fn drained(&self) -> bool {
        self.load() == 0
    }

    fn shutdown(&self) {
        self.killed.store(true, Ordering::SeqCst);
        let (child, tcp, addr) = {
            let mut st = self.state.lock().unwrap();
            (st.child.take(), st.tcp.take(), st.addr.clone())
        };
        // Cache the child's final counters before asking it to exit;
        // the router merges these into the fleet snapshot afterwards.
        if let Ok(snap) = TcpConn::connect_with_timeout(&addr, Duration::from_secs(2))
            .and_then(|mut c| c.fetch_stats())
        {
            *self.last_stats.lock().unwrap() = snap;
        }
        // Graceful drain: shutdown frame, wait for the ack (the child
        // answers everything admitted first).
        let _ = TcpConn::connect_with_timeout(&addr, Duration::from_secs(5))
            .and_then(|mut c| c.shutdown_server());
        // Reap with a bounded wait; a child that ignores the protocol
        // is SIGKILLed rather than leaked.
        if let Some(mut child) = child {
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut exited = false;
            while Instant::now() < deadline {
                if matches!(child.try_wait(), Ok(Some(_))) {
                    exited = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if !exited {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
        if let Some(tcp) = tcp {
            tcp.shutdown();
        }
    }

    fn can_lose_inflight(&self) -> bool {
        true
    }
}

/// The supervisor over N [`ProcessShard`]s: spawns them, reaps exits,
/// respawns with backoff, and drives the deterministic process-kill
/// fault. Hand [`Fleet::backends`] to [`Router::start`](crate::Router).
pub struct Fleet {
    shards: Vec<Arc<ProcessShard>>,
    stop: Arc<AtomicBool>,
    supervisor: Option<JoinHandle<()>>,
    proc_kills: Arc<AtomicU64>,
}

impl Fleet {
    /// Spawns `cfg.shards` child processes (waiting for each handshake)
    /// and starts the supervision thread. On a failed spawn, every
    /// already-started child is killed before the error returns.
    pub fn spawn(cfg: FleetConfig) -> io::Result<Fleet> {
        assert!(cfg.shards > 0, "fleet needs at least one shard process");
        let mut shards: Vec<Arc<ProcessShard>> = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            match ProcessShard::launch(format!("proc-{i}"), &cfg) {
                Ok(s) => shards.push(s),
                Err(e) => {
                    for s in &shards {
                        s.shutdown();
                    }
                    return Err(e);
                }
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let proc_kills = Arc::new(AtomicU64::new(0));
        let supervisor = {
            let shards = shards.clone();
            let stop = stop.clone();
            let proc_kills = proc_kills.clone();
            std::thread::Builder::new()
                .name("ibcf-fleet-supervisor".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        for shard in &shards {
                            if let Some(FaultAction::KillProcess) =
                                cfg.fault.check(FaultSite::ShardProcess)
                            {
                                let alive = shards.iter().filter(|s| s.child_alive()).count();
                                // Never take the whole fleet down: the
                                // last live process is immune.
                                if alive > 1 && shard.kill_child() {
                                    proc_kills.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            shard.respawn_if_dead(&cfg);
                        }
                        std::thread::sleep(cfg.interval);
                    }
                })
                .expect("spawn fleet supervisor")
        };
        Ok(Fleet {
            shards,
            stop,
            supervisor: Some(supervisor),
            proc_kills,
        })
    }

    /// The shards as routable backends, in slot order.
    pub fn backends(&self) -> Vec<Arc<dyn ShardBackend>> {
        self.shards
            .iter()
            .map(|s| s.clone() as Arc<dyn ShardBackend>)
            .collect()
    }

    /// The shards themselves (pid/respawn introspection).
    pub fn shards(&self) -> &[Arc<ProcessShard>] {
        &self.shards
    }

    /// Current child pids, in slot order (dead slots omitted).
    pub fn child_pids(&self) -> Vec<u32> {
        self.shards.iter().filter_map(|s| s.child_pid()).collect()
    }

    /// Total respawns across the fleet.
    pub fn respawns(&self) -> u64 {
        self.shards.iter().map(|s| s.respawns()).sum()
    }

    /// Processes SIGKILLed by the fault plan.
    pub fn proc_kills(&self) -> u64 {
        self.proc_kills.load(Ordering::Relaxed)
    }

    /// `true` while every slot has a live child process.
    pub fn all_children_alive(&self) -> bool {
        self.shards.iter().all(|s| s.child_alive())
    }

    /// Stops the supervision thread (no more respawns). Call *before*
    /// [`Router::shutdown`](crate::Router::shutdown) so drained
    /// children are not resurrected mid-teardown.
    pub fn stop_supervisor(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop_supervisor();
        // Belt and braces: anything the router did not shut down is
        // reaped here, so a panicking test never leaks processes.
        for s in &self.shards {
            if s.child_alive() {
                s.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stand-in child: prints the handshake and sleeps. No TCP server
    /// behind it — these tests exercise the supervisor's process
    /// management, not the wire path (the CLI integration tests do
    /// that with real `--shard-child` binaries).
    fn sleeper_cfg(shards: usize) -> FleetConfig {
        let mut cfg = FleetConfig::new(PathBuf::from("/bin/sh"), shards);
        cfg.child_args = vec![
            "-c".into(),
            format!("echo '{SHARD_READY_PREFIX}127.0.0.1:1'; exec sleep 600"),
        ];
        cfg.interval = Duration::from_millis(1);
        cfg
    }

    #[test]
    fn handshake_parses_and_children_are_reaped_on_drop() {
        let fleet = Fleet::spawn(sleeper_cfg(2)).expect("spawn sleeper fleet");
        let pids = fleet.child_pids();
        assert_eq!(pids.len(), 2);
        assert!(fleet.all_children_alive());
        drop(fleet);
        for pid in pids {
            // SIGKILL was delivered and the zombie reaped: the pid is
            // gone from the process table.
            assert!(
                !std::path::Path::new(&format!("/proc/{pid}")).exists(),
                "child {pid} leaked"
            );
        }
    }

    #[test]
    fn a_killed_child_is_respawned_with_a_fresh_pid() {
        let fleet = Fleet::spawn(sleeper_cfg(2)).expect("spawn sleeper fleet");
        let before = fleet.child_pids();
        assert!(fleet.shards[0].kill_child());
        let deadline = Instant::now() + Duration::from_secs(10);
        while fleet.respawns() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(fleet.respawns() >= 1, "supervisor never respawned");
        let deadline = Instant::now() + Duration::from_secs(10);
        while !fleet.all_children_alive() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let after = fleet.child_pids();
        assert_eq!(after.len(), 2);
        assert_ne!(before[0], after[0], "slot 0 must hold a fresh process");
        assert_eq!(before[1], after[1], "slot 1 was untouched");
    }

    #[test]
    fn a_child_that_dies_without_the_handshake_is_an_error() {
        let mut cfg = FleetConfig::new(PathBuf::from("/bin/sh"), 1);
        cfg.child_args = vec!["-c".into(), "echo nope".into()];
        assert!(Fleet::spawn(cfg).is_err());
    }
}
