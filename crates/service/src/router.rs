//! Router/shard tier: one front door over N factorization shards.
//!
//! ROADMAP item 2's production shape is *many* servers, with routing
//! keyed by `(n, dtype)` so each shard's batch former sees homogeneous
//! traffic and keeps lane occupancy high. This module provides that
//! tier:
//!
//! - a [`Router`] fronts N [`ShardBackend`]s — in-process services
//!   ([`InProcessShard`]) or remote `ibcf serve` processes over TCP
//!   ([`TcpShard`]);
//! - requests route by [`RoutePolicy`]: rendezvous (highest-random-
//!   weight) hashing of `(n, dtype)` for stable keys with minimal
//!   movement on failover, or least-loaded by ingest-queue depth;
//! - a health thread probes every shard on a jittered cadence (each
//!   slot's probe schedule is de-correlated from its neighbours', so a
//!   recovering fleet is not hit by a thundering herd of simultaneous
//!   probes) and marks dead shards unroutable; live submissions that
//!   hit a dying shard fail over to the next healthy candidate
//!   immediately;
//! - every slot carries a **circuit breaker**: K consecutive
//!   connect/submit/probe failures trip it open (the slot leaves the
//!   routing set), a cooldown later it half-opens for a trial probe,
//!   and a successful probe closes it again. States and trip counts
//!   surface in [`ShardStat`]; transition totals in
//!   [`FleetStat`](crate::stats::FleetStat);
//! - when a shard *process* dies, its [`TcpShard`] pending map answers
//!   every orphaned in-flight request with a typed
//!   [`Outcome::ShardLost`]; the router intercepts the first loss and
//!   transparently resubmits to a healthy shard (exactly once — a
//!   second loss surfaces `ShardLost` to the caller, who may resubmit
//!   like any crash);
//! - optional **hedged requests** ([`RouterConfig::hedge_after`]): a
//!   submit that has not answered within the hedge delay is duplicated
//!   to a second healthy shard; the first reply wins at a shared
//!   take-once sink and the loser is counted as suppressed, so the
//!   exactly-one-reply invariant holds by construction;
//! - a full shard queue is *never* spilled to a colder shard and never
//!   blocks the router: the client gets a typed
//!   [`RejectReason::Backpressure`] carrying a retry-after hint, and is
//!   expected to resubmit no sooner than the hint (the load generator's
//!   retry loop honors this);
//! - the chaos harness kills whole shards deterministically through
//!   [`FaultSite::RouterShard`](crate::fault::FaultSite) /
//!   [`FaultAction::KillShard`]: the health loop drains the victim
//!   (already-admitted work is still answered — exactly-one-reply
//!   survives shard death) and refuses to kill the last healthy shard.
//!
//! The [`RouterClient`] implements [`Frontend`], so the TCP server can
//! front a whole fleet exactly as it fronts one service, and
//! [`RouterClient::stats`] reports the fleet merge (via
//! [`StatsSnapshot::merge`]) with a per-shard breakdown attached.

use crate::codec::{
    decode_factor_reply, encode_factor_req, read_frame, wire_deadline_us, write_frame,
    K_FACTOR_REPLY, K_FACTOR_REQ, K_LARGE_REQ,
};
use crate::fault::{FaultAction, FaultHook, FaultSite};
use crate::request::{FactorReply, Outcome, Payload, RejectReason, ReplySink};
use crate::retry::RetryPolicy;
use crate::server::TcpConn;
use crate::service::{Client, Frontend, Service};
use crate::stats::{BreakerStat, FleetStat, ShardStat, StatsSnapshot};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A refusal handed back by [`ShardBackend::try_submit`]: nothing was
/// delivered through the sink, so the router still owns the request.
pub type SubmitRefusal = (RejectReason, Payload, ReplySink);

/// One backend the router can route to.
pub trait ShardBackend: Send + Sync {
    /// Display name (stable for the life of the fleet, e.g. `shard-0`).
    fn name(&self) -> &str;

    /// Non-blocking admission. `Ok` means the shard owns the request and
    /// will invoke the sink exactly once; `Err` hands reason, payload,
    /// and sink back untouched so the router can re-route or reject.
    fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal>;

    /// Non-blocking admission for a *large* request, bound for the
    /// shard's task-graph pool instead of its batch former. Same
    /// ownership contract as [`ShardBackend::try_submit`].
    fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal>;

    /// `true` while the shard can accept new work (the health probe).
    fn probe(&self) -> bool;

    /// Backlog estimate for least-loaded routing (queued requests).
    fn load(&self) -> usize;

    /// The shard's own counters.
    fn stats(&self) -> StatsSnapshot;

    /// Stops admission on this shard (the deterministic shard kill).
    /// Already-admitted work must still drain to its sinks.
    fn kill(&self);

    /// `true` once every admitted request has been answered.
    fn drained(&self) -> bool;

    /// Releases the shard's resources (joins worker threads). Called
    /// once, from [`Router::shutdown`], after [`ShardBackend::kill`].
    fn shutdown(&self);

    /// `true` when an *admitted* request can still be lost before its
    /// sink fires — a remote connection or child process can die with
    /// requests in flight, an in-process shard cannot. The router only
    /// pays for the in-flight-failover guard (a payload clone per
    /// request) on fleets where a loss is possible; everyone else keeps
    /// the zero-copy reply fast path untouched.
    fn can_lose_inflight(&self) -> bool {
        false
    }
}

/// A shard running inside this process: one [`Service`] with its own
/// former, queue, and worker pool.
pub struct InProcessShard {
    name: String,
    client: Client,
    service: Mutex<Option<Service>>,
}

impl InProcessShard {
    /// Wraps a started service as a routable shard.
    pub fn new(name: impl Into<String>, service: Service) -> InProcessShard {
        InProcessShard {
            name: name.into(),
            client: service.client(),
            service: Mutex::new(Some(service)),
        }
    }
}

impl ShardBackend for InProcessShard {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.client.try_submit(id, n, payload, deadline, sink)
    }

    fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.client.try_submit_large(id, n, payload, deadline, sink)
    }

    fn probe(&self) -> bool {
        self.client.is_accepting()
    }

    fn load(&self) -> usize {
        self.client.queue_depth()
    }

    fn stats(&self) -> StatsSnapshot {
        self.client.stats()
    }

    fn kill(&self) {
        // Graceful: stop admission, keep answering what was admitted.
        self.client.begin_drain();
    }

    fn drained(&self) -> bool {
        self.client.drained()
    }

    fn shutdown(&self) {
        if let Some(service) = self.service.lock().unwrap().take() {
            service.shutdown();
        }
    }
}

/// Requests in flight on one TCP shard connection, keyed by the wire id
/// the shard sees (the router renumbers — caller ids are only unique per
/// front-end connection, not fleet-wide).
struct TcpPending {
    map: HashMap<u64, (u64, ReplySink)>,
    /// Set by the dying reader, under this lock, *before* it drains the
    /// map — so a submitter holding the lock either sees `dead` or gets
    /// its entry drained, never neither.
    dead: bool,
}

struct TcpShardConn {
    stream: TcpStream,
    reader: JoinHandle<()>,
    pending: Arc<Mutex<TcpPending>>,
}

/// Connection slot plus the reconnect-backoff ledger guarding it. The
/// backoff *gates* rather than sleeps: a submit that arrives inside the
/// backoff window is refused immediately (the router fails it over), so
/// the submit path never blocks on a dead shard.
struct TcpConnState {
    conn: Option<TcpShardConn>,
    /// Consecutive failed connect attempts; resets on success.
    attempt: u32,
    /// Earliest instant the next connect attempt is allowed, per the
    /// shard's [`RetryPolicy`] equal-jitter schedule.
    next_connect_at: Option<Instant>,
}

/// A shard behind a TCP connection to a remote `ibcf serve` process.
///
/// The router renumbers requests onto a private wire-id space, pumps
/// replies back through a reader thread, and answers everything still in
/// flight with a typed [`Outcome::ShardLost`] (idempotent — safe to
/// resubmit, and the router resubmits the first loss itself) if the
/// connection dies mid-stream. Reconnects follow the shared
/// [`RetryPolicy`] equal-jitter backoff instead of hammering a dead
/// address on every submit.
pub struct TcpShard {
    name: String,
    addr: String,
    next_wire_id: AtomicU64,
    killed: AtomicBool,
    retry: RetryPolicy,
    state: Mutex<TcpConnState>,
}

impl TcpShard {
    /// A shard that will lazily connect to `addr` on first use, with the
    /// default reconnect backoff seeded from the address (deterministic
    /// per shard, de-correlated across shards).
    pub fn new(name: impl Into<String>, addr: impl Into<String>) -> TcpShard {
        let addr = addr.into();
        let seed = addr.bytes().fold(0xC0FFEEu64, |h, b| mix(h ^ u64::from(b)));
        Self::with_retry(name, addr, RetryPolicy::reconnect(seed))
    }

    /// A shard with an explicit reconnect-backoff policy.
    pub fn with_retry(
        name: impl Into<String>,
        addr: impl Into<String>,
        retry: RetryPolicy,
    ) -> TcpShard {
        TcpShard {
            name: name.into(),
            addr: addr.into(),
            next_wire_id: AtomicU64::new(1),
            killed: AtomicBool::new(false),
            retry,
            state: Mutex::new(TcpConnState {
                conn: None,
                attempt: 0,
                next_connect_at: None,
            }),
        }
    }

    /// Ensures a live connection exists, reaping a dead one first.
    /// Returns `false` when the shard is unreachable *or* the reconnect
    /// backoff window has not elapsed yet.
    fn ensure_conn(&self, st: &mut TcpConnState) -> bool {
        if let Some(c) = st.conn.as_ref() {
            if !c.pending.lock().unwrap().dead {
                return true;
            }
            let c = st.conn.take().unwrap();
            // A loss-guard resubmission can re-enter from the dying
            // reader itself (its drain callbacks run on that thread);
            // joining ourselves would deadlock, so detach in that case.
            if c.reader.thread().id() != std::thread::current().id() {
                let _ = c.reader.join();
            }
        }
        if let Some(t) = st.next_connect_at {
            if Instant::now() < t {
                return false;
            }
        }
        let connected = TcpStream::connect(&self.addr)
            .ok()
            .and_then(|s| s.try_clone().ok().map(|r| (s, r)));
        let Some((stream, read_half)) = connected else {
            st.attempt += 1;
            st.next_connect_at = Some(Instant::now() + self.retry.backoff(st.attempt));
            return false;
        };
        st.attempt = 0;
        st.next_connect_at = None;
        stream.set_nodelay(true).ok();
        let pending = Arc::new(Mutex::new(TcpPending {
            map: HashMap::new(),
            dead: false,
        }));
        let reader = {
            let pending = pending.clone();
            std::thread::Builder::new()
                .name("ibcf-shard-reader".into())
                .spawn(move || {
                    let mut r = BufReader::new(read_half);
                    loop {
                        match read_frame(&mut r) {
                            Ok(Some((K_FACTOR_REPLY, body))) => {
                                let Ok(reply) = decode_factor_reply(&body) else {
                                    break;
                                };
                                let entry = pending.lock().unwrap().map.remove(&reply.id);
                                if let Some((caller_id, sink)) = entry {
                                    sink.send(FactorReply {
                                        id: caller_id,
                                        outcome: reply.outcome,
                                    });
                                }
                            }
                            Ok(Some(_)) => {} // unexpected kind: ignore
                            Ok(None) | Err(_) => break,
                        }
                    }
                    // The connection is gone: everything still in flight
                    // gets a typed shard-lost reply (resubmitting is
                    // safe — the router does it once itself). `dead`
                    // flips under the same lock, so no submitter can add
                    // an entry nobody will ever answer.
                    let drained: Vec<(u64, ReplySink)> = {
                        let mut p = pending.lock().unwrap();
                        p.dead = true;
                        p.map.drain().map(|(_, v)| v).collect()
                    };
                    for (caller_id, sink) in drained {
                        sink.send(FactorReply {
                            id: caller_id,
                            outcome: Outcome::ShardLost,
                        });
                    }
                })
                .expect("spawn shard reader")
        };
        st.conn = Some(TcpShardConn {
            stream,
            reader,
            pending,
        });
        true
    }

    /// Shared wire path for both request kinds: the frame bodies are
    /// identical, only the kind byte tells the remote shard whether to
    /// batch (former) or schedule (task-graph pool).
    fn submit_kind(
        &self,
        kind: u8,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        if self.killed.load(Ordering::SeqCst) {
            return Err((RejectReason::ShuttingDown, payload, sink));
        }
        let mut st = self.state.lock().unwrap();
        if !self.ensure_conn(&mut st) {
            return Err((RejectReason::ShuttingDown, payload, sink));
        }
        let c = st.conn.as_mut().unwrap();
        let wire_id = self.next_wire_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut p = c.pending.lock().unwrap();
            if p.dead {
                return Err((RejectReason::ShuttingDown, payload, sink));
            }
            p.map.insert(wire_id, (id, sink));
        }
        // Forward the *remaining* deadline; wire_deadline_us keeps an
        // almost-expired one from truncating to "no deadline".
        let wire_deadline =
            wire_deadline_us(deadline.map(|d| d.saturating_duration_since(Instant::now())));
        let body = encode_factor_req(wire_id, n, wire_deadline, &payload);
        let mut w = &c.stream;
        if write_frame(&mut w, kind, &body).is_err() {
            c.stream.shutdown(Shutdown::Both).ok();
            return match c.pending.lock().unwrap().map.remove(&wire_id) {
                // We still own the sink: hand everything back.
                Some((_, sink)) => Err((RejectReason::ShuttingDown, payload, sink)),
                // The reader drained it first (typed crash reply went
                // out): the request was answered, nothing to hand back.
                None => Ok(()),
            };
        }
        Ok(())
    }
}

impl ShardBackend for TcpShard {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.submit_kind(K_FACTOR_REQ, id, n, payload, deadline, sink)
    }

    fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.submit_kind(K_LARGE_REQ, id, n, payload, deadline, sink)
    }

    fn probe(&self) -> bool {
        if self.killed.load(Ordering::SeqCst) {
            return false;
        }
        let mut st = self.state.lock().unwrap();
        self.ensure_conn(&mut st)
    }

    fn load(&self) -> usize {
        self.state
            .lock()
            .unwrap()
            .conn
            .as_ref()
            .map_or(0, |c| c.pending.lock().unwrap().map.len())
    }

    fn stats(&self) -> StatsSnapshot {
        TcpConn::connect_with_timeout(&self.addr, Duration::from_secs(2))
            .and_then(|mut c| c.fetch_stats())
            .unwrap_or_default()
    }

    fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        if let Some(c) = self.state.lock().unwrap().conn.as_ref() {
            // Wakes the reader, which answers all in-flight requests
            // with typed shard-lost replies.
            c.stream.shutdown(Shutdown::Both).ok();
        }
    }

    fn drained(&self) -> bool {
        self.load() == 0
    }

    fn shutdown(&self) {
        self.kill();
        if let Some(c) = self.state.lock().unwrap().conn.take() {
            let _ = c.reader.join();
        }
    }

    fn can_lose_inflight(&self) -> bool {
        true
    }
}

/// How the router picks a shard for a request key `(n, dtype)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Rendezvous (highest-random-weight) hashing over the healthy
    /// shards: a key always lands on the same shard while that shard
    /// lives, and only the dead shard's keys move on failover — batch
    /// formers keep seeing homogeneous traffic.
    ConsistentHash,
    /// The healthy shard with the shallowest ingest queue.
    LeastLoaded,
}

impl std::str::FromStr for RoutePolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<RoutePolicy, String> {
        match s {
            "hash" | "consistent-hash" => Ok(RoutePolicy::ConsistentHash),
            "least-loaded" | "load" => Ok(RoutePolicy::LeastLoaded),
            other => Err(format!(
                "unknown route policy {other} (use hash or least-loaded)"
            )),
        }
    }
}

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard selection policy.
    pub policy: RoutePolicy,
    /// Base health-probe cadence. Each slot's actual schedule adds a
    /// deterministic per-slot jitter (see [`probe_jitter`]) so N shards
    /// are never probed in lockstep.
    pub health_interval: Duration,
    /// The retry-after hint handed out when the routed shard's queue is
    /// full. Should cover roughly one former flush cycle.
    pub retry_after_us: u32,
    /// Fault hook for deterministic shard kills
    /// ([`FaultSite::RouterShard`]).
    pub fault: FaultHook,
    /// Consecutive connect/submit/probe failures before a slot's circuit
    /// breaker trips open.
    pub breaker_threshold: u32,
    /// How long an open breaker waits before half-opening for a trial
    /// probe.
    pub breaker_cooldown: Duration,
    /// When set, a submit still unanswered after this delay is hedged:
    /// duplicated to a second healthy shard, first reply wins, the
    /// loser's reply is suppressed and counted. Hedge firing is driven
    /// by the health thread, so the effective granularity is
    /// `health_interval`. `None` (the default) disables hedging.
    pub hedge_after: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            policy: RoutePolicy::ConsistentHash,
            health_interval: Duration::from_millis(10),
            retry_after_us: 1_000,
            fault: FaultHook::disabled(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            hedge_after: None,
        }
    }
}

/// SplitMix64 — the same mixer the fault plans use; good avalanche for
/// rendezvous weights.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The rendezvous salt of slot `i` — fixed for the life of the fleet, so
/// a slot keeps its identity (and its keys) across health flaps.
pub fn slot_salt(i: usize) -> u64 {
    mix(0xC0FFEE ^ (i as u64) << 17)
}

/// The rendezvous key for request dimension `n` and dtype tag.
pub fn rendezvous_key(n: usize, dtype_tag: u8) -> u64 {
    mix((n as u64) << 8 | u64::from(dtype_tag))
}

/// The rendezvous (highest-random-weight) owner of key `(n, dtype_tag)`
/// among the slots whose `healthy[i]` is set: the pure core of
/// [`RoutePolicy::ConsistentHash`], exposed so property tests can check
/// stability under shard-set churn without standing up a fleet.
pub fn rendezvous_owner(n: usize, dtype_tag: u8, salts: &[u64], healthy: &[bool]) -> Option<usize> {
    let key = rendezvous_key(n, dtype_tag);
    (0..salts.len())
        .filter(|&i| *healthy.get(i).unwrap_or(&false))
        .max_by_key(|&i| (mix(key ^ salts[i]), std::cmp::Reverse(i)))
}

/// Deterministic per-slot probe jitter for health round `round`: a value
/// in `[0, interval)` derived from the slot's rendezvous salt, so two
/// slots' probe schedules de-correlate while each slot's own schedule
/// stays reproducible.
pub fn probe_jitter(salt: u64, round: u64, interval: Duration) -> Duration {
    let span = interval.as_nanos().max(1) as u64;
    Duration::from_nanos(mix(salt ^ round.wrapping_mul(0x9E3779B97F4A7C15)) % span)
}

/// Circuit-breaker states (packed into an `AtomicU8`).
const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;
const BREAKER_HALF_OPEN: u8 = 2;

/// Per-slot circuit breaker: trips open after K consecutive failures,
/// half-opens after a cooldown, and closes again on a successful trial.
/// All transitions happen under the `opened_at` mutex so concurrent
/// submit failures and health rounds cannot double-count a trip.
struct Breaker {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    trips: AtomicU64,
    opened_at: Mutex<Option<Instant>>,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: AtomicU8::new(BREAKER_CLOSED),
            consecutive_failures: AtomicU32::new(0),
            trips: AtomicU64::new(0),
            opened_at: Mutex::new(None),
        }
    }

    fn is_open(&self) -> bool {
        self.state.load(Ordering::SeqCst) == BREAKER_OPEN
    }

    fn state_name(&self) -> &'static str {
        match self.state.load(Ordering::SeqCst) {
            BREAKER_OPEN => "open",
            BREAKER_HALF_OPEN => "half-open",
            _ => "closed",
        }
    }

    /// Records a successful probe/submit. Returns `true` when this
    /// closed a half-open breaker (the shard is readmitted).
    fn record_success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        let mut opened = self.opened_at.lock().unwrap();
        if self.state.load(Ordering::SeqCst) == BREAKER_HALF_OPEN {
            self.state.store(BREAKER_CLOSED, Ordering::SeqCst);
            *opened = None;
            return true;
        }
        false
    }

    /// Records a failed probe/submit. Returns `true` when this tripped
    /// the breaker open (from closed past the threshold, or a failed
    /// half-open trial falling straight back open).
    fn record_failure(&self, threshold: u32) -> bool {
        let fails = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        let mut opened = self.opened_at.lock().unwrap();
        let tripped = match self.state.load(Ordering::SeqCst) {
            BREAKER_HALF_OPEN => true,
            BREAKER_CLOSED => fails >= threshold.max(1),
            _ => false,
        };
        if tripped {
            self.state.store(BREAKER_OPEN, Ordering::SeqCst);
            *opened = Some(Instant::now());
            self.trips.fetch_add(1, Ordering::SeqCst);
        }
        tripped
    }

    /// Moves an open breaker whose cooldown has elapsed to half-open.
    /// Returns `true` on the transition.
    fn try_half_open(&self, cooldown: Duration) -> bool {
        let mut opened = self.opened_at.lock().unwrap();
        if self.state.load(Ordering::SeqCst) == BREAKER_OPEN
            && opened.is_some_and(|t| t.elapsed() >= cooldown)
        {
            self.state.store(BREAKER_HALF_OPEN, Ordering::SeqCst);
            *opened = None;
            return true;
        }
        false
    }

    fn stat(&self) -> BreakerStat {
        BreakerStat {
            state: self.state_name().to_string(),
            trips: self.trips.load(Ordering::SeqCst),
        }
    }
}

struct ShardSlot {
    backend: Arc<dyn ShardBackend>,
    healthy: AtomicBool,
    killed: AtomicBool,
    /// Requests the router handed this shard.
    routed: AtomicU64,
    /// Rendezvous salt (fixed per slot).
    salt: u64,
    breaker: Breaker,
    /// Next scheduled health probe (jittered per slot).
    next_probe: Mutex<Instant>,
}

/// A reply destination shared between a primary submit and its hedge
/// copy: whichever reply arrives first takes the sink; the loser finds
/// it gone and is counted as a suppressed duplicate. Exactly-one-reply
/// holds because `take` is atomic under the mutex.
struct SharedSink {
    inner: Mutex<Option<ReplySink>>,
}

impl SharedSink {
    fn new(sink: ReplySink) -> SharedSink {
        SharedSink {
            inner: Mutex::new(Some(sink)),
        }
    }

    fn take(&self) -> Option<ReplySink> {
        self.inner.lock().unwrap().take()
    }

    fn is_taken(&self) -> bool {
        self.inner.lock().unwrap().is_none()
    }
}

/// A hedge armed at submit time: if the shared sink is still untaken at
/// `fire_at`, the health thread duplicates the request to a shard other
/// than `primary`.
struct HedgeEntry {
    fire_at: Instant,
    id: u64,
    n: usize,
    payload: Payload,
    deadline: Option<Instant>,
    large: bool,
    shared: Arc<SharedSink>,
    primary: usize,
}

struct RouterCore {
    slots: Vec<ShardSlot>,
    policy: RoutePolicy,
    retry_after_us: u32,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    health_interval: Duration,
    hedge_after: Option<Duration>,
    stop: AtomicBool,
    /// Health rounds completed (drives the per-slot probe jitter).
    rounds: AtomicU64,
    /// Router-level rejections (delivered by the router itself, so no
    /// shard counted them).
    rejected: AtomicU64,
    /// Subset of `rejected` that were backpressure hints.
    backpressured: AtomicU64,
    /// Submissions that had to skip a refusing shard.
    failovers: AtomicU64,
    /// Shards actually killed by the fault plan.
    kills: AtomicU64,
    /// Hedge copies dispatched to a second shard.
    hedges: AtomicU64,
    /// Duplicate replies suppressed at a shared sink.
    hedge_wasted: AtomicU64,
    /// In-flight `ShardLost` replies transparently resubmitted.
    shard_lost_resubmits: AtomicU64,
    /// Breaker transitions open → half-open.
    breaker_half_opens: AtomicU64,
    /// Breaker transitions half-open → closed.
    breaker_closes: AtomicU64,
    /// Hedges armed but not yet fired.
    hedge_queue: Mutex<Vec<HedgeEntry>>,
}

impl RouterCore {
    /// Healthy slot indices ranked by the active policy for key
    /// `(n, dtype)`.
    fn pick_order(&self, n: usize, dtype_tag: u8) -> Vec<usize> {
        let mut healthy: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].healthy.load(Ordering::SeqCst))
            .collect();
        match self.policy {
            RoutePolicy::ConsistentHash => {
                let key = rendezvous_key(n, dtype_tag);
                healthy.sort_by_key(|&i| std::cmp::Reverse(mix(key ^ self.slots[i].salt)));
            }
            RoutePolicy::LeastLoaded => {
                healthy.sort_by_key(|&i| (self.slots[i].backend.load(), i));
            }
        }
        healthy
    }

    fn submit(
        self: &Arc<Self>,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        self.submit_inner(id, n, payload, deadline, sink, false, true);
    }

    /// Routes a large request: same shard selection, failover, and
    /// backpressure discipline as [`RouterCore::submit`], but admission
    /// goes through [`ShardBackend::try_submit_large`] so the owning
    /// shard schedules the matrix on its task-graph pool.
    fn submit_large(
        self: &Arc<Self>,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        self.submit_inner(id, n, payload, deadline, sink, true, true);
    }

    /// The routing loop. `fresh` is true for a caller-originated submit
    /// (which may arm a hedge and a loss guard) and false for the
    /// router's own recovery traffic — a `ShardLost` resubmission or a
    /// hedge copy must not recursively arm further recovery, which is
    /// what bounds the failover to exactly one resubmit.
    #[allow(clippy::too_many_arguments)]
    fn submit_inner(
        self: &Arc<Self>,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        large: bool,
        fresh: bool,
    ) {
        let reject = |sink: ReplySink, reason: RejectReason| {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            sink.send(FactorReply {
                id,
                outcome: Outcome::Rejected(reason),
            });
        };
        let order = self.pick_order(n, payload.dtype().to_u8());
        let mut payload = payload;
        let mut sink = sink;
        // Hedging: move the caller's sink behind a shared take-once cell
        // so the primary and a later hedge copy race to exactly one
        // delivery. Armed only for fresh submits with a second shard to
        // hedge to.
        let hedge_shared = match (fresh, self.hedge_after, order.len() >= 2) {
            (true, Some(_), true) => {
                let shared = Arc::new(SharedSink::new(sink));
                let core = self.clone();
                let s = shared.clone();
                sink = ReplySink::boxed(move |reply| match s.take() {
                    Some(inner) => inner.send(reply),
                    None => {
                        core.hedge_wasted.fetch_add(1, Ordering::Relaxed);
                    }
                });
                Some(shared)
            }
            _ => None,
        };
        // In-flight failover: on a fleet where an admitted request can
        // die with its shard, intercept the first `ShardLost` and
        // resubmit it once. Costs one payload clone per fresh request.
        // `admitted_to` records which slot holds the request so the
        // guard can mark the loser unroutable *before* resubmitting —
        // otherwise the resubmission races the health round and can
        // land straight back on the dying shard.
        let mut admitted_to = None;
        if fresh
            && order
                .iter()
                .any(|&i| self.slots[i].backend.can_lose_inflight())
        {
            let slot_cell = Arc::new(AtomicU64::new(u64::MAX));
            admitted_to = Some(slot_cell.clone());
            let core = self.clone();
            let retry_payload = payload.clone();
            let inner = sink;
            sink = ReplySink::boxed(move |reply| {
                if matches!(reply.outcome, Outcome::ShardLost) {
                    let lost = slot_cell.load(Ordering::SeqCst);
                    if let Some(slot) = core.slots.get(lost as usize) {
                        slot.healthy.store(false, Ordering::SeqCst);
                        slot.breaker.record_failure(core.breaker_threshold);
                    }
                    core.shard_lost_resubmits.fetch_add(1, Ordering::Relaxed);
                    core.submit_inner(id, n, retry_payload, deadline, inner, large, false);
                } else {
                    inner.send(reply);
                }
            });
        }
        let hedge_payload = hedge_shared.as_ref().map(|_| payload.clone());
        for (attempt, &i) in order.iter().enumerate() {
            if attempt > 0 {
                self.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let slot = &self.slots[i];
            // Record the candidate before handing the sink over: once
            // admitted, the reader thread may fire `ShardLost` at any
            // moment and the guard must know whom to blame.
            if let Some(cell) = &admitted_to {
                cell.store(i as u64, Ordering::SeqCst);
            }
            let admitted = if large {
                slot.backend
                    .try_submit_large(id, n, payload, deadline, sink)
            } else {
                slot.backend.try_submit(id, n, payload, deadline, sink)
            };
            match admitted {
                Ok(()) => {
                    slot.routed.fetch_add(1, Ordering::Relaxed);
                    if slot.breaker.record_success() {
                        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
                    }
                    if let (Some(shared), Some(hp), Some(delay)) =
                        (hedge_shared, hedge_payload, self.hedge_after)
                    {
                        self.hedge_queue.lock().unwrap().push(HedgeEntry {
                            fire_at: Instant::now() + delay,
                            id,
                            n,
                            payload: hp,
                            deadline,
                            large,
                            shared,
                            primary: i,
                        });
                    }
                    return;
                }
                Err((RejectReason::QueueFull, _, s)) => {
                    // The shard this key belongs on is at capacity.
                    // Spilling to a colder shard would wreck its former's
                    // homogeneity and hide the hotspot, and blocking
                    // would stall every connection behind this one — so
                    // shed with a typed retry-after hint instead.
                    self.backpressured.fetch_add(1, Ordering::Relaxed);
                    return reject(
                        s,
                        RejectReason::Backpressure {
                            retry_after_us: self.retry_after_us,
                        },
                    );
                }
                Err((RejectReason::ShuttingDown, p, s)) => {
                    // The shard died between the health round and now:
                    // mark it unroutable, feed its breaker, fail over.
                    slot.healthy.store(false, Ordering::SeqCst);
                    slot.breaker.record_failure(self.breaker_threshold);
                    payload = p;
                    sink = s;
                }
                Err((reason, _, s)) => {
                    // BadDimension / BadPayload / DeadlineExceeded: the
                    // request itself is at fault, no shard can help.
                    return reject(s, reason);
                }
            }
        }
        // No healthy shard accepted. A recovery resubmission that finds
        // nowhere to go surfaces the loss itself rather than masking it
        // as a shutdown.
        if fresh {
            reject(sink, RejectReason::ShuttingDown);
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            sink.send(FactorReply {
                id,
                outcome: Outcome::ShardLost,
            });
        }
    }

    /// Fires every armed hedge whose delay elapsed and whose primary has
    /// not answered yet: the copy goes to a healthy shard other than the
    /// primary, sharing the primary's take-once sink.
    fn fire_due_hedges(self: &Arc<Self>) {
        let due: Vec<HedgeEntry> = {
            let mut q = self.hedge_queue.lock().unwrap();
            let now = Instant::now();
            // Answered entries are dropped unfired; due ones are pulled.
            q.retain(|e| !e.shared.is_taken());
            let (fire, keep) = std::mem::take(&mut *q)
                .into_iter()
                .partition(|e| e.fire_at <= now);
            *q = keep;
            fire
        };
        for e in due {
            let Some(&alt) = self
                .pick_order(e.n, e.payload.dtype().to_u8())
                .iter()
                .find(|&&i| i != e.primary)
            else {
                continue;
            };
            let core = self.clone();
            let shared = e.shared.clone();
            // The hedge copy never triggers recovery: a lost or refused
            // copy is simply dropped (the primary still owns delivery),
            // and any real outcome races for the shared sink.
            let sink = ReplySink::boxed(move |reply| {
                if matches!(reply.outcome, Outcome::ShardLost) {
                    return;
                }
                match shared.take() {
                    Some(inner) => inner.send(reply),
                    None => {
                        core.hedge_wasted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            let slot = &self.slots[alt];
            let admitted = if e.large {
                slot.backend
                    .try_submit_large(e.id, e.n, e.payload, e.deadline, sink)
            } else {
                slot.backend
                    .try_submit(e.id, e.n, e.payload, e.deadline, sink)
            };
            if admitted.is_ok() {
                slot.routed.fetch_add(1, Ordering::Relaxed);
                self.hedges.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// One health round: maybe kill a shard (fault plan), drive breaker
    /// cooldowns, re-probe every slot whose jittered schedule is due,
    /// and fire due hedges.
    fn health_round(self: &Arc<Self>, fault: &FaultHook) {
        let round = self.rounds.fetch_add(1, Ordering::Relaxed);
        for slot in &self.slots {
            if let Some(FaultAction::KillShard) = fault.check(FaultSite::RouterShard) {
                let alive = self
                    .slots
                    .iter()
                    .filter(|s| s.healthy.load(Ordering::SeqCst))
                    .count();
                // Never take the whole fleet down: the last healthy
                // shard is immune.
                if alive > 1 && !slot.killed.swap(true, Ordering::SeqCst) {
                    slot.backend.kill();
                    self.kills.fetch_add(1, Ordering::Relaxed);
                }
            }
            if slot.breaker.try_half_open(self.breaker_cooldown) {
                self.breaker_half_opens.fetch_add(1, Ordering::Relaxed);
            }
            if slot.breaker.is_open() {
                // An open breaker keeps the slot out of the routing set
                // and is *not* probed — that is the point of tripping.
                slot.healthy.store(false, Ordering::SeqCst);
                continue;
            }
            let now = Instant::now();
            let due = *slot.next_probe.lock().unwrap() <= now;
            if !due {
                continue;
            }
            let up = !slot.killed.load(Ordering::SeqCst) && slot.backend.probe();
            if up {
                if slot.breaker.record_success() {
                    self.breaker_closes.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                slot.breaker.record_failure(self.breaker_threshold);
            }
            slot.healthy
                .store(up && !slot.breaker.is_open(), Ordering::SeqCst);
            *slot.next_probe.lock().unwrap() =
                now + self.health_interval + probe_jitter(slot.salt, round, self.health_interval);
        }
        self.fire_due_hedges();
    }

    fn fleet_stat(&self) -> FleetStat {
        FleetStat {
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wasted: self.hedge_wasted.load(Ordering::Relaxed),
            shard_lost_resubmits: self.shard_lost_resubmits.load(Ordering::Relaxed),
            breaker_trips: self
                .slots
                .iter()
                .map(|s| s.breaker.trips.load(Ordering::SeqCst))
                .sum(),
            breaker_half_opens: self.breaker_half_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
        }
    }

    fn fleet_snapshot(&self) -> StatsSnapshot {
        let shards: Vec<ShardStat> = self
            .slots
            .iter()
            .map(|slot| ShardStat {
                name: slot.backend.name().to_string(),
                healthy: slot.healthy.load(Ordering::SeqCst),
                routed: slot.routed.load(Ordering::Relaxed),
                breaker: Some(slot.breaker.stat()),
                snapshot: slot.backend.stats(),
            })
            .collect();
        let mut fleet = shards
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s.snapshot));
        // Rejections the router delivered itself (backpressure, no
        // healthy shard) were never seen by any shard.
        fleet.rejected += self.rejected.load(Ordering::Relaxed);
        fleet.shards = Some(shards);
        fleet.fleet = Some(self.fleet_stat());
        fleet
    }
}

/// The shard tier's front door. Owns the health thread; hand
/// [`Router::client`] to the TCP server (it implements [`Frontend`]).
pub struct Router {
    core: Arc<RouterCore>,
    health: Option<JoinHandle<()>>,
}

impl Router {
    /// Starts a router over `shards` with the given config. The health
    /// thread probes every shard each `health_interval` and drives the
    /// fault plan's shard kills.
    pub fn start(shards: Vec<Arc<dyn ShardBackend>>, cfg: RouterConfig) -> Router {
        assert!(!shards.is_empty(), "router needs at least one shard");
        let slots: Vec<ShardSlot> = shards
            .into_iter()
            .enumerate()
            .map(|(i, backend)| ShardSlot {
                healthy: AtomicBool::new(backend.probe()),
                killed: AtomicBool::new(false),
                routed: AtomicU64::new(0),
                salt: slot_salt(i),
                breaker: Breaker::new(),
                next_probe: Mutex::new(Instant::now()),
                backend,
            })
            .collect();
        let core = Arc::new(RouterCore {
            slots,
            policy: cfg.policy,
            retry_after_us: cfg.retry_after_us,
            breaker_threshold: cfg.breaker_threshold,
            breaker_cooldown: cfg.breaker_cooldown,
            health_interval: cfg.health_interval,
            hedge_after: cfg.hedge_after,
            stop: AtomicBool::new(false),
            rounds: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            backpressured: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wasted: AtomicU64::new(0),
            shard_lost_resubmits: AtomicU64::new(0),
            breaker_half_opens: AtomicU64::new(0),
            breaker_closes: AtomicU64::new(0),
            hedge_queue: Mutex::new(Vec::new()),
        });
        let health = {
            let core = core.clone();
            let fault = cfg.fault.clone();
            let interval = cfg.health_interval;
            std::thread::Builder::new()
                .name("ibcf-router-health".into())
                .spawn(move || {
                    while !core.stop.load(Ordering::SeqCst) {
                        core.health_round(&fault);
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn router health thread")
        };
        Router {
            core,
            health: Some(health),
        }
    }

    /// A cheap, cloneable submission handle (the [`Frontend`] the TCP
    /// server runs on).
    pub fn client(&self) -> RouterClient {
        RouterClient {
            core: self.core.clone(),
        }
    }

    /// Shards the fault plan killed.
    pub fn kills(&self) -> u64 {
        self.core.kills.load(Ordering::Relaxed)
    }

    /// Submissions that skipped at least one refusing shard.
    pub fn failovers(&self) -> u64 {
        self.core.failovers.load(Ordering::Relaxed)
    }

    /// Backpressure rejections the router handed out.
    pub fn backpressured(&self) -> u64 {
        self.core.backpressured.load(Ordering::Relaxed)
    }

    /// Stops the health thread, drains and shuts every shard down, and
    /// returns the final fleet snapshot (per-shard breakdown attached).
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.core.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        for slot in &self.core.slots {
            slot.backend.kill();
        }
        let t0 = Instant::now();
        while !self.core.slots.iter().all(|s| s.backend.drained())
            && t0.elapsed() < Duration::from_secs(30)
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        for slot in &self.core.slots {
            slot.backend.shutdown();
        }
        self.core.fleet_snapshot()
    }
}

/// Cloneable handle routing submissions across the fleet; the router's
/// [`Frontend`] implementation.
#[derive(Clone)]
pub struct RouterClient {
    core: Arc<RouterCore>,
}

impl RouterClient {
    /// Routes one request; the reply arrives through `sink` exactly once
    /// (inline for rejections and backpressure).
    pub fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        self.core.submit(id, n, payload, deadline, sink);
    }

    /// Routes one *large* request onto a shard's task-graph pool; same
    /// exactly-once sink contract as [`RouterClient::submit_sink`].
    pub fn submit_large_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        self.core.submit_large(id, n, payload, deadline, sink);
    }

    /// Fleet-merged counters with the per-shard breakdown attached.
    pub fn stats(&self) -> StatsSnapshot {
        self.core.fleet_snapshot()
    }

    /// Stops admission fleet-wide; queued work keeps draining.
    pub fn begin_drain(&self) {
        for slot in &self.core.slots {
            slot.healthy.store(false, Ordering::SeqCst);
            slot.backend.kill();
        }
    }

    /// `true` once every shard answered everything it admitted.
    pub fn drained(&self) -> bool {
        self.core.slots.iter().all(|s| s.backend.drained())
    }
}

impl Frontend for RouterClient {
    fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        _blocking: bool,
    ) {
        // The router never blocks: a full shard queue is a typed
        // backpressure reject, whatever the caller asked for.
        RouterClient::submit_sink(self, id, n, payload, deadline, sink);
    }

    fn submit_large_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        RouterClient::submit_large_sink(self, id, n, payload, deadline, sink);
    }

    fn stats(&self) -> StatsSnapshot {
        RouterClient::stats(self)
    }

    fn begin_drain(&self) {
        RouterClient::begin_drain(self);
    }

    fn drained(&self) -> bool {
        RouterClient::drained(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineSelector;
    use crate::fault::FaultPlan;
    use crate::service::ServiceConfig;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    /// A scripted backend: refuses with a fixed reason, or accepts and
    /// echoes the payload back as a factor. Can also be scripted to
    /// *lose* the next accepted request (typed `ShardLost`, like a
    /// process death) or to *hold* accepted sinks unanswered (a
    /// straggler, for hedging tests).
    struct TestBackend {
        name: String,
        refuse: Mutex<Option<RejectReason>>,
        accepted: Mutex<Vec<u64>>,
        load: AtomicUsize,
        can_lose: AtomicBool,
        lose_next: AtomicBool,
        hold: AtomicBool,
        held: Mutex<Vec<(u64, Payload, ReplySink)>>,
    }

    impl TestBackend {
        fn new(name: &str) -> Arc<TestBackend> {
            Arc::new(TestBackend {
                name: name.to_string(),
                refuse: Mutex::new(None),
                accepted: Mutex::new(Vec::new()),
                load: AtomicUsize::new(0),
                can_lose: AtomicBool::new(false),
                lose_next: AtomicBool::new(false),
                hold: AtomicBool::new(false),
                held: Mutex::new(Vec::new()),
            })
        }

        fn refuse_with(&self, reason: Option<RejectReason>) {
            *self.refuse.lock().unwrap() = reason;
        }

        fn accepted_ids(&self) -> Vec<u64> {
            self.accepted.lock().unwrap().clone()
        }

        /// Answers every held request with its factor.
        fn release_held(&self) {
            for (id, payload, sink) in self.held.lock().unwrap().drain(..) {
                sink.send(FactorReply {
                    id,
                    outcome: Outcome::Factor(payload),
                });
            }
        }
    }

    impl ShardBackend for TestBackend {
        fn name(&self) -> &str {
            &self.name
        }

        fn try_submit(
            &self,
            id: u64,
            n: usize,
            payload: Payload,
            _deadline: Option<Instant>,
            sink: ReplySink,
        ) -> Result<(), SubmitRefusal> {
            let _ = n;
            if let Some(reason) = *self.refuse.lock().unwrap() {
                return Err((reason, payload, sink));
            }
            self.accepted.lock().unwrap().push(id);
            if self.lose_next.swap(false, Ordering::SeqCst) {
                // The process died with the request in flight: the
                // pending map answers ShardLost and the connection
                // refuses from now on.
                self.refuse_with(Some(RejectReason::ShuttingDown));
                sink.send(FactorReply {
                    id,
                    outcome: Outcome::ShardLost,
                });
                return Ok(());
            }
            if self.hold.load(Ordering::SeqCst) {
                self.held.lock().unwrap().push((id, payload, sink));
                return Ok(());
            }
            sink.send(FactorReply {
                id,
                outcome: Outcome::Factor(payload),
            });
            Ok(())
        }

        fn try_submit_large(
            &self,
            id: u64,
            n: usize,
            payload: Payload,
            deadline: Option<Instant>,
            sink: ReplySink,
        ) -> Result<(), SubmitRefusal> {
            self.try_submit(id, n, payload, deadline, sink)
        }

        fn probe(&self) -> bool {
            !matches!(
                *self.refuse.lock().unwrap(),
                Some(RejectReason::ShuttingDown)
            )
        }

        fn load(&self) -> usize {
            self.load.load(Ordering::Relaxed)
        }

        fn stats(&self) -> StatsSnapshot {
            StatsSnapshot {
                requests: self.accepted.lock().unwrap().len() as u64,
                ..StatsSnapshot::default()
            }
        }

        fn kill(&self) {
            self.refuse_with(Some(RejectReason::ShuttingDown));
        }

        fn drained(&self) -> bool {
            true
        }

        fn shutdown(&self) {}

        fn can_lose_inflight(&self) -> bool {
            self.can_lose.load(Ordering::SeqCst)
        }
    }

    fn fakes(n: usize) -> Vec<Arc<TestBackend>> {
        (0..n).map(|i| TestBackend::new(&format!("s{i}"))).collect()
    }

    fn as_backends(f: &[Arc<TestBackend>]) -> Vec<Arc<dyn ShardBackend>> {
        f.iter()
            .map(|b| b.clone() as Arc<dyn ShardBackend>)
            .collect()
    }

    fn call(client: &RouterClient, id: u64, n: usize) -> FactorReply {
        let (tx, rx) = mpsc::sync_channel(1);
        client.submit_sink(
            id,
            n,
            Payload::F32(vec![1.0; n * n]),
            None,
            ReplySink::boxed(move |r| drop(tx.send(r))),
        );
        rx.recv().expect("sink never invoked")
    }

    #[test]
    fn rendezvous_routing_is_stable_and_spreads_keys() {
        let f = fakes(4);
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        // Same key, many submissions: all land on one shard.
        for id in 0..32 {
            assert!(call(&client, id, 8).outcome.is_ok());
        }
        let owners: Vec<usize> = (0..4).map(|i| f[i].accepted_ids().len()).collect();
        assert_eq!(
            owners.iter().filter(|&&c| c > 0).count(),
            1,
            "one key must map to exactly one shard, got {owners:?}"
        );
        // Many distinct keys: more than one shard sees traffic.
        for (id, n) in (1..=32usize).enumerate() {
            assert!(call(&client, 100 + id as u64, n).outcome.is_ok());
        }
        let spread = (0..4).filter(|&i| !f[i].accepted_ids().is_empty()).count();
        assert!(spread > 1, "32 keys all hashed to one of 4 shards");
        router.shutdown();
    }

    #[test]
    fn failover_reroutes_live_traffic_off_a_dead_shard() {
        let f = fakes(3);
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        assert!(call(&client, 1, 6).outcome.is_ok());
        let owner = (0..3)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        // The owner dies without the health thread noticing yet: the
        // submit path itself must fail over.
        f[owner].kill();
        let reply = call(&client, 2, 6);
        assert!(reply.outcome.is_ok(), "failover failed: {reply:?}");
        assert_eq!(router.failovers(), 1);
        let new_owner = (0..3)
            .position(|i| i != owner && !f[i].accepted_ids().is_empty())
            .expect("no other shard accepted the rerouted request");
        // The rerouted key sticks to its new shard on the next submit.
        assert!(call(&client, 3, 6).outcome.is_ok());
        assert_eq!(f[new_owner].accepted_ids(), vec![2, 3]);
        // All shards dead: a typed ShuttingDown, not a hang.
        for b in &f {
            b.kill();
        }
        let reply = call(&client, 4, 6);
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
        router.shutdown();
    }

    fn call_large(client: &RouterClient, id: u64, n: usize) -> FactorReply {
        let (tx, rx) = mpsc::sync_channel(1);
        client.submit_large_sink(
            id,
            n,
            Payload::F32(vec![1.0; n * n]),
            None,
            ReplySink::boxed(move |r| drop(tx.send(r))),
        );
        rx.recv().expect("large sink never invoked")
    }

    #[test]
    fn large_requests_route_and_fail_over_like_small_ones() {
        let f = fakes(3);
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        assert!(call_large(&client, 1, 96).outcome.is_ok());
        let owner = (0..3)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        // The owner dies between health rounds: the large submit path
        // must fail over exactly like the batched one.
        f[owner].kill();
        let reply = call_large(&client, 2, 96);
        assert!(reply.outcome.is_ok(), "large failover failed: {reply:?}");
        assert_eq!(router.failovers(), 1);
        // A large key sticks to one shard (rendezvous), same as small.
        assert!(call_large(&client, 3, 96).outcome.is_ok());
        let new_owner = (0..3)
            .position(|i| i != owner && !f[i].accepted_ids().is_empty())
            .expect("no other shard accepted the rerouted large request");
        assert_eq!(f[new_owner].accepted_ids(), vec![2, 3]);
        router.shutdown();
    }

    #[test]
    fn full_queue_is_typed_backpressure_not_spill_or_block() {
        let f = fakes(2);
        let cfg = RouterConfig {
            retry_after_us: 777,
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        assert!(call(&client, 1, 5).outcome.is_ok());
        let owner = (0..2)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        f[owner].refuse_with(Some(RejectReason::QueueFull));
        let reply = call(&client, 2, 5);
        assert_eq!(
            reply.outcome,
            Outcome::Rejected(RejectReason::Backpressure {
                retry_after_us: 777
            }),
            "full queue must surface as a typed retry-after hint"
        );
        // No spill: the other shard saw nothing.
        assert!(f[1 - owner].accepted_ids().is_empty());
        assert_eq!(router.backpressured(), 1);
        assert_eq!(router.failovers(), 0);
        router.shutdown();
    }

    #[test]
    fn malformed_requests_reject_typed_without_failover() {
        let f = fakes(2);
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        assert!(call(&client, 1, 4).outcome.is_ok());
        let owner = (0..2)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        f[owner].refuse_with(Some(RejectReason::BadDimension));
        let reply = call(&client, 2, 4);
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::BadDimension));
        assert_eq!(router.failovers(), 0, "a bad request must not shard-hop");
        router.shutdown();
    }

    #[test]
    fn least_loaded_picks_the_shallowest_queue() {
        let f = fakes(2);
        let cfg = RouterConfig {
            policy: RoutePolicy::LeastLoaded,
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        f[0].load.store(5, Ordering::Relaxed);
        assert!(call(&client, 1, 4).outcome.is_ok());
        assert_eq!(f[1].accepted_ids(), vec![1]);
        f[0].load.store(0, Ordering::Relaxed);
        f[1].load.store(9, Ordering::Relaxed);
        assert!(call(&client, 2, 4).outcome.is_ok());
        assert_eq!(f[0].accepted_ids(), vec![2]);
        router.shutdown();
    }

    #[test]
    fn fault_plan_kills_shards_but_never_the_last_one() {
        let f = fakes(2);
        let cfg = RouterConfig {
            health_interval: Duration::from_millis(1),
            fault: FaultHook::from_plan(FaultPlan::shard_kill(99)),
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        // Let the health loop run well past both budgeted kill firings.
        let t0 = Instant::now();
        while router.kills() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            router.kills(),
            1,
            "the second budgeted kill must be refused (last healthy shard)"
        );
        let alive = f.iter().filter(|b| b.probe()).count();
        assert_eq!(alive, 1, "exactly one shard must survive");
        // And the survivor still serves.
        assert!(call(&client, 1, 4).outcome.is_ok());
        router.shutdown();
    }

    #[test]
    fn fleet_stats_merge_shards_and_count_router_rejects() {
        let f = fakes(2);
        let cfg = RouterConfig {
            retry_after_us: 50,
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        for id in 0..6 {
            // Distinct n per id so both shards likely see traffic.
            assert!(call(&client, id, 2 + id as usize).outcome.is_ok());
        }
        f[0].refuse_with(Some(RejectReason::QueueFull));
        f[1].refuse_with(Some(RejectReason::QueueFull));
        let r = call(&client, 99, 3);
        assert!(matches!(
            r.outcome,
            Outcome::Rejected(RejectReason::Backpressure { .. })
        ));
        let snap = Frontend::stats(&client);
        assert_eq!(snap.requests, 6, "fleet requests = sum of shards");
        assert_eq!(snap.rejected, 1, "router-level rejects count in fleet");
        let shards = snap.shards.expect("fleet snapshot carries shard list");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards.iter().map(|s| s.routed).sum::<u64>(), 6);
        assert_eq!(shards.iter().map(|s| s.snapshot.requests).sum::<u64>(), 6);
        router.shutdown();
    }

    /// End-to-end over real in-process services: route, kill a shard
    /// mid-stream, and require every request to get exactly one reply.
    #[test]
    fn in_process_fleet_survives_a_shard_kill_end_to_end() {
        let shards: Vec<Arc<dyn ShardBackend>> = (0..3)
            .map(|i| {
                let service = Service::start(
                    ServiceConfig {
                        max_delay: Duration::from_micros(200),
                        ..ServiceConfig::default()
                    },
                    EngineSelector::heuristic(),
                );
                Arc::new(InProcessShard::new(format!("shard-{i}"), service))
                    as Arc<dyn ShardBackend>
            })
            .collect();
        let router = Router::start(shards, RouterConfig::default());
        let client = router.client();
        let (tx, rx) = mpsc::channel::<FactorReply>();
        let total = 120u64;
        for id in 0..total {
            // Cycle a few sizes so rendezvous spreads the keys.
            let n = 2 + (id % 4) as usize;
            let mut a = vec![0.0f32; n * n];
            for d in 0..n {
                a[d * n + d] = 4.0;
            }
            let tx = tx.clone();
            client.submit_sink(
                id,
                n,
                Payload::F32(a),
                None,
                ReplySink::boxed(move |r| drop(tx.send(r))),
            );
            if id == total / 2 {
                // Kill one shard mid-stream, as the chaos plan would.
                router.core.slots[0].killed.store(true, Ordering::SeqCst);
                router.core.slots[0].backend.kill();
            }
        }
        drop(tx);
        let mut ids: Vec<u64> = rx.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..total).collect::<Vec<_>>(),
            "exactly one reply per request, even across a shard kill"
        );
        let snap = router.shutdown();
        let shards = snap.shards.expect("fleet snapshot has shard breakdown");
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(|s| s.routed).sum::<u64>(), total);
    }

    #[test]
    fn probe_jitter_decorrelates_slots_and_stays_in_range() {
        let interval = Duration::from_millis(10);
        let (s0, s1) = (slot_salt(0), slot_salt(1));
        let rounds = 100u64;
        let mut differing = 0;
        let mut distinct0 = std::collections::HashSet::new();
        for round in 0..rounds {
            let j0 = probe_jitter(s0, round, interval);
            let j1 = probe_jitter(s1, round, interval);
            assert!(
                j0 < interval && j1 < interval,
                "jitter must stay in [0, interval)"
            );
            // Deterministic: the same (salt, round) always jitters the same.
            assert_eq!(j0, probe_jitter(s0, round, interval));
            if j0 != j1 {
                differing += 1;
            }
            distinct0.insert(j0);
        }
        assert!(
            differing >= rounds * 9 / 10,
            "two slots' probe schedules stayed in lockstep ({differing}/{rounds} rounds differ)"
        );
        assert!(
            distinct0.len() > 1,
            "a slot's own schedule must vary across rounds"
        );
    }

    #[test]
    fn shard_lost_in_flight_is_resubmitted_exactly_once() {
        let f = fakes(2);
        for b in &f {
            b.can_lose.store(true, Ordering::SeqCst);
        }
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        assert!(call(&client, 1, 6).outcome.is_ok());
        let owner = (0..2)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        // The owner's process dies with request 2 in flight: the typed
        // loss must be resubmitted to the surviving shard, invisibly.
        f[owner].lose_next.store(true, Ordering::SeqCst);
        let reply = call(&client, 2, 6);
        assert!(reply.outcome.is_ok(), "loss not recovered: {reply:?}");
        assert!(f[1 - owner].accepted_ids().contains(&2));
        assert_eq!(router.core.shard_lost_resubmits.load(Ordering::Relaxed), 1);
        let fleet = Frontend::stats(&client).fleet.expect("fleet stat");
        assert_eq!(fleet.shard_lost_resubmits, 1);
        router.shutdown();
    }

    #[test]
    fn a_second_loss_surfaces_shard_lost_to_the_caller() {
        let f = fakes(2);
        for b in &f {
            b.can_lose.store(true, Ordering::SeqCst);
            b.lose_next.store(true, Ordering::SeqCst);
        }
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        // First loss: resubmitted. The resubmission's shard dies too:
        // the loss surfaces typed (the caller may resubmit like any
        // crash) instead of looping forever.
        let reply = call(&client, 1, 6);
        assert_eq!(reply.outcome, Outcome::ShardLost);
        assert_eq!(router.core.shard_lost_resubmits.load(Ordering::Relaxed), 1);
        router.shutdown();
    }

    #[test]
    fn breaker_trips_half_opens_and_closes() {
        let f = fakes(2);
        let cfg = RouterConfig {
            health_interval: Duration::from_millis(1),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(30),
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        let breaker_of = |name: &str| {
            Frontend::stats(&client)
                .shards
                .expect("shard list")
                .into_iter()
                .find(|s| s.name == name)
                .and_then(|s| s.breaker)
                .expect("breaker stat")
        };
        // Shard s0 starts failing probes: after `threshold` consecutive
        // failures its breaker must trip open.
        f[0].refuse_with(Some(RejectReason::ShuttingDown));
        let t0 = Instant::now();
        while breaker_of("s0").state != "open" && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        let open = breaker_of("s0");
        assert_eq!(open.state, "open");
        assert_eq!(open.trips, 1);
        // The shard recovers: a cooldown later the breaker half-opens
        // for a trial probe, which succeeds and closes it.
        f[0].refuse_with(None);
        let t0 = Instant::now();
        while breaker_of("s0").state != "closed" && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(breaker_of("s0").state, "closed");
        let fleet = Frontend::stats(&client).fleet.expect("fleet stat");
        assert_eq!(fleet.breaker_trips, 1);
        assert!(fleet.breaker_half_opens >= 1, "no half-open recorded");
        assert!(fleet.breaker_closes >= 1, "no close recorded");
        // The readmitted shard serves again.
        assert_eq!(breaker_of("s1").trips, 0, "healthy slot never tripped");
        router.shutdown();
    }

    #[test]
    fn hedged_request_wins_on_the_second_shard_and_suppresses_the_duplicate() {
        let f = fakes(2);
        let cfg = RouterConfig {
            health_interval: Duration::from_millis(1),
            hedge_after: Some(Duration::from_millis(5)),
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        assert!(call(&client, 1, 6).outcome.is_ok());
        let owner = (0..2)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        // The owner straggles: it accepts but never answers. The hedge
        // fires on the other shard and its reply wins.
        f[owner].hold.store(true, Ordering::SeqCst);
        let reply = call(&client, 2, 6);
        assert!(reply.outcome.is_ok(), "hedge never answered: {reply:?}");
        assert!(f[1 - owner].accepted_ids().contains(&2));
        // The counter is bumped by the health thread just *after* the
        // hedge reply is delivered, so give it a moment.
        let t0 = Instant::now();
        while router.core.hedges.load(Ordering::Relaxed) == 0
            && t0.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(router.core.hedges.load(Ordering::Relaxed), 1);
        // The straggler finally answers: the duplicate is suppressed at
        // the shared sink and only counted, never delivered.
        f[owner].release_held();
        assert_eq!(router.core.hedge_wasted.load(Ordering::Relaxed), 1);
        let fleet = Frontend::stats(&client).fleet.expect("fleet stat");
        assert_eq!(fleet.hedges, 1);
        assert_eq!(fleet.hedge_wasted, 1);
        router.shutdown();
    }

    #[test]
    fn an_answered_request_is_never_hedged() {
        let f = fakes(2);
        let cfg = RouterConfig {
            health_interval: Duration::from_millis(1),
            hedge_after: Some(Duration::from_millis(2)),
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        for id in 0..20 {
            assert!(call(&client, id, 4 + (id % 3) as usize).outcome.is_ok());
        }
        // Replies were instant: every armed hedge must be cancelled
        // before it fires.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(router.core.hedges.load(Ordering::Relaxed), 0);
        assert_eq!(router.core.hedge_wasted.load(Ordering::Relaxed), 0);
        let total: usize = f.iter().map(|b| b.accepted_ids().len()).sum();
        assert_eq!(total, 20, "no duplicate submissions");
        router.shutdown();
    }
}
