//! Router/shard tier: one front door over N factorization shards.
//!
//! ROADMAP item 2's production shape is *many* servers, with routing
//! keyed by `(n, dtype)` so each shard's batch former sees homogeneous
//! traffic and keeps lane occupancy high. This module provides that
//! tier:
//!
//! - a [`Router`] fronts N [`ShardBackend`]s — in-process services
//!   ([`InProcessShard`]) or remote `ibcf serve` processes over TCP
//!   ([`TcpShard`]);
//! - requests route by [`RoutePolicy`]: rendezvous (highest-random-
//!   weight) hashing of `(n, dtype)` for stable keys with minimal
//!   movement on failover, or least-loaded by ingest-queue depth;
//! - a health thread probes every shard on a fixed cadence and marks
//!   dead shards unroutable; live submissions that hit a dying shard
//!   fail over to the next healthy candidate immediately;
//! - a full shard queue is *never* spilled to a colder shard and never
//!   blocks the router: the client gets a typed
//!   [`RejectReason::Backpressure`] carrying a retry-after hint, and is
//!   expected to resubmit no sooner than the hint (the load generator's
//!   retry loop honors this);
//! - the chaos harness kills whole shards deterministically through
//!   [`FaultSite::RouterShard`](crate::fault::FaultSite) /
//!   [`FaultAction::KillShard`]: the health loop drains the victim
//!   (already-admitted work is still answered — exactly-one-reply
//!   survives shard death) and refuses to kill the last healthy shard.
//!
//! The [`RouterClient`] implements [`Frontend`], so the TCP server can
//! front a whole fleet exactly as it fronts one service, and
//! [`RouterClient::stats`] reports the fleet merge (via
//! [`StatsSnapshot::merge`]) with a per-shard breakdown attached.

use crate::codec::{
    decode_factor_reply, encode_factor_req, read_frame, wire_deadline_us, write_frame,
    K_FACTOR_REPLY, K_FACTOR_REQ, K_LARGE_REQ,
};
use crate::fault::{FaultAction, FaultHook, FaultSite};
use crate::request::{FactorReply, Outcome, Payload, RejectReason, ReplySink};
use crate::server::TcpConn;
use crate::service::{Client, Frontend, Service};
use crate::stats::{ShardStat, StatsSnapshot};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A refusal handed back by [`ShardBackend::try_submit`]: nothing was
/// delivered through the sink, so the router still owns the request.
pub type SubmitRefusal = (RejectReason, Payload, ReplySink);

/// One backend the router can route to.
pub trait ShardBackend: Send + Sync {
    /// Display name (stable for the life of the fleet, e.g. `shard-0`).
    fn name(&self) -> &str;

    /// Non-blocking admission. `Ok` means the shard owns the request and
    /// will invoke the sink exactly once; `Err` hands reason, payload,
    /// and sink back untouched so the router can re-route or reject.
    fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal>;

    /// Non-blocking admission for a *large* request, bound for the
    /// shard's task-graph pool instead of its batch former. Same
    /// ownership contract as [`ShardBackend::try_submit`].
    fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal>;

    /// `true` while the shard can accept new work (the health probe).
    fn probe(&self) -> bool;

    /// Backlog estimate for least-loaded routing (queued requests).
    fn load(&self) -> usize;

    /// The shard's own counters.
    fn stats(&self) -> StatsSnapshot;

    /// Stops admission on this shard (the deterministic shard kill).
    /// Already-admitted work must still drain to its sinks.
    fn kill(&self);

    /// `true` once every admitted request has been answered.
    fn drained(&self) -> bool;

    /// Releases the shard's resources (joins worker threads). Called
    /// once, from [`Router::shutdown`], after [`ShardBackend::kill`].
    fn shutdown(&self);
}

/// A shard running inside this process: one [`Service`] with its own
/// former, queue, and worker pool.
pub struct InProcessShard {
    name: String,
    client: Client,
    service: Mutex<Option<Service>>,
}

impl InProcessShard {
    /// Wraps a started service as a routable shard.
    pub fn new(name: impl Into<String>, service: Service) -> InProcessShard {
        InProcessShard {
            name: name.into(),
            client: service.client(),
            service: Mutex::new(Some(service)),
        }
    }
}

impl ShardBackend for InProcessShard {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.client.try_submit(id, n, payload, deadline, sink)
    }

    fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.client.try_submit_large(id, n, payload, deadline, sink)
    }

    fn probe(&self) -> bool {
        self.client.is_accepting()
    }

    fn load(&self) -> usize {
        self.client.queue_depth()
    }

    fn stats(&self) -> StatsSnapshot {
        self.client.stats()
    }

    fn kill(&self) {
        // Graceful: stop admission, keep answering what was admitted.
        self.client.begin_drain();
    }

    fn drained(&self) -> bool {
        self.client.drained()
    }

    fn shutdown(&self) {
        if let Some(service) = self.service.lock().unwrap().take() {
            service.shutdown();
        }
    }
}

/// Requests in flight on one TCP shard connection, keyed by the wire id
/// the shard sees (the router renumbers — caller ids are only unique per
/// front-end connection, not fleet-wide).
struct TcpPending {
    map: HashMap<u64, (u64, ReplySink)>,
    /// Set by the dying reader, under this lock, *before* it drains the
    /// map — so a submitter holding the lock either sees `dead` or gets
    /// its entry drained, never neither.
    dead: bool,
}

struct TcpShardConn {
    stream: TcpStream,
    reader: JoinHandle<()>,
    pending: Arc<Mutex<TcpPending>>,
}

/// A shard behind a TCP connection to a remote `ibcf serve` process.
///
/// The router renumbers requests onto a private wire-id space, pumps
/// replies back through a reader thread, and answers everything still in
/// flight with a typed [`Outcome::WorkerCrashed`] (idempotent — safe to
/// resubmit) if the connection dies mid-stream.
pub struct TcpShard {
    name: String,
    addr: String,
    next_wire_id: AtomicU64,
    killed: AtomicBool,
    conn: Mutex<Option<TcpShardConn>>,
}

impl TcpShard {
    /// A shard that will lazily connect to `addr` on first use.
    pub fn new(name: impl Into<String>, addr: impl Into<String>) -> TcpShard {
        TcpShard {
            name: name.into(),
            addr: addr.into(),
            next_wire_id: AtomicU64::new(1),
            killed: AtomicBool::new(false),
            conn: Mutex::new(None),
        }
    }

    /// Ensures a live connection exists, reaping a dead one first.
    /// Returns `false` when the shard is unreachable.
    fn ensure_conn(&self, conn: &mut Option<TcpShardConn>) -> bool {
        if let Some(c) = conn.as_ref() {
            if !c.pending.lock().unwrap().dead {
                return true;
            }
            let c = conn.take().unwrap();
            let _ = c.reader.join();
        }
        let Ok(stream) = TcpStream::connect(&self.addr) else {
            return false;
        };
        stream.set_nodelay(true).ok();
        let Ok(read_half) = stream.try_clone() else {
            return false;
        };
        let pending = Arc::new(Mutex::new(TcpPending {
            map: HashMap::new(),
            dead: false,
        }));
        let reader = {
            let pending = pending.clone();
            std::thread::Builder::new()
                .name("ibcf-shard-reader".into())
                .spawn(move || {
                    let mut r = BufReader::new(read_half);
                    loop {
                        match read_frame(&mut r) {
                            Ok(Some((K_FACTOR_REPLY, body))) => {
                                let Ok(reply) = decode_factor_reply(&body) else {
                                    break;
                                };
                                let entry = pending.lock().unwrap().map.remove(&reply.id);
                                if let Some((caller_id, sink)) = entry {
                                    sink.send(FactorReply {
                                        id: caller_id,
                                        outcome: reply.outcome,
                                    });
                                }
                            }
                            Ok(Some(_)) => {} // unexpected kind: ignore
                            Ok(None) | Err(_) => break,
                        }
                    }
                    // The connection is gone: everything still in flight
                    // gets a typed crash reply (resubmitting is safe).
                    // `dead` flips under the same lock, so no submitter
                    // can add an entry nobody will ever answer.
                    let drained: Vec<(u64, ReplySink)> = {
                        let mut p = pending.lock().unwrap();
                        p.dead = true;
                        p.map.drain().map(|(_, v)| v).collect()
                    };
                    for (caller_id, sink) in drained {
                        sink.send(FactorReply {
                            id: caller_id,
                            outcome: Outcome::WorkerCrashed,
                        });
                    }
                })
                .expect("spawn shard reader")
        };
        *conn = Some(TcpShardConn {
            stream,
            reader,
            pending,
        });
        true
    }

    /// Shared wire path for both request kinds: the frame bodies are
    /// identical, only the kind byte tells the remote shard whether to
    /// batch (former) or schedule (task-graph pool).
    fn submit_kind(
        &self,
        kind: u8,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        if self.killed.load(Ordering::SeqCst) {
            return Err((RejectReason::ShuttingDown, payload, sink));
        }
        let mut conn = self.conn.lock().unwrap();
        if !self.ensure_conn(&mut conn) {
            return Err((RejectReason::ShuttingDown, payload, sink));
        }
        let c = conn.as_mut().unwrap();
        let wire_id = self.next_wire_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut p = c.pending.lock().unwrap();
            if p.dead {
                return Err((RejectReason::ShuttingDown, payload, sink));
            }
            p.map.insert(wire_id, (id, sink));
        }
        // Forward the *remaining* deadline; wire_deadline_us keeps an
        // almost-expired one from truncating to "no deadline".
        let wire_deadline =
            wire_deadline_us(deadline.map(|d| d.saturating_duration_since(Instant::now())));
        let body = encode_factor_req(wire_id, n, wire_deadline, &payload);
        let mut w = &c.stream;
        if write_frame(&mut w, kind, &body).is_err() {
            c.stream.shutdown(Shutdown::Both).ok();
            return match c.pending.lock().unwrap().map.remove(&wire_id) {
                // We still own the sink: hand everything back.
                Some((_, sink)) => Err((RejectReason::ShuttingDown, payload, sink)),
                // The reader drained it first (typed crash reply went
                // out): the request was answered, nothing to hand back.
                None => Ok(()),
            };
        }
        Ok(())
    }
}

impl ShardBackend for TcpShard {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.submit_kind(K_FACTOR_REQ, id, n, payload, deadline, sink)
    }

    fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.submit_kind(K_LARGE_REQ, id, n, payload, deadline, sink)
    }

    fn probe(&self) -> bool {
        if self.killed.load(Ordering::SeqCst) {
            return false;
        }
        let mut conn = self.conn.lock().unwrap();
        self.ensure_conn(&mut conn)
    }

    fn load(&self) -> usize {
        self.conn
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |c| c.pending.lock().unwrap().map.len())
    }

    fn stats(&self) -> StatsSnapshot {
        TcpConn::connect_with_timeout(&self.addr, Duration::from_secs(2))
            .and_then(|mut c| c.fetch_stats())
            .unwrap_or_default()
    }

    fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        if let Some(c) = self.conn.lock().unwrap().as_ref() {
            // Wakes the reader, which answers all in-flight requests
            // with typed crash replies.
            c.stream.shutdown(Shutdown::Both).ok();
        }
    }

    fn drained(&self) -> bool {
        self.load() == 0
    }

    fn shutdown(&self) {
        self.kill();
        if let Some(c) = self.conn.lock().unwrap().take() {
            let _ = c.reader.join();
        }
    }
}

/// How the router picks a shard for a request key `(n, dtype)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Rendezvous (highest-random-weight) hashing over the healthy
    /// shards: a key always lands on the same shard while that shard
    /// lives, and only the dead shard's keys move on failover — batch
    /// formers keep seeing homogeneous traffic.
    ConsistentHash,
    /// The healthy shard with the shallowest ingest queue.
    LeastLoaded,
}

impl std::str::FromStr for RoutePolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<RoutePolicy, String> {
        match s {
            "hash" | "consistent-hash" => Ok(RoutePolicy::ConsistentHash),
            "least-loaded" | "load" => Ok(RoutePolicy::LeastLoaded),
            other => Err(format!(
                "unknown route policy {other} (use hash or least-loaded)"
            )),
        }
    }
}

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard selection policy.
    pub policy: RoutePolicy,
    /// Health probe cadence (every shard, every round).
    pub health_interval: Duration,
    /// The retry-after hint handed out when the routed shard's queue is
    /// full. Should cover roughly one former flush cycle.
    pub retry_after_us: u32,
    /// Fault hook for deterministic shard kills
    /// ([`FaultSite::RouterShard`]).
    pub fault: FaultHook,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            policy: RoutePolicy::ConsistentHash,
            health_interval: Duration::from_millis(10),
            retry_after_us: 1_000,
            fault: FaultHook::disabled(),
        }
    }
}

/// SplitMix64 — the same mixer the fault plans use; good avalanche for
/// rendezvous weights.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

struct ShardSlot {
    backend: Arc<dyn ShardBackend>,
    healthy: AtomicBool,
    killed: AtomicBool,
    /// Requests the router handed this shard.
    routed: AtomicU64,
    /// Rendezvous salt (fixed per slot).
    salt: u64,
}

struct RouterCore {
    slots: Vec<ShardSlot>,
    policy: RoutePolicy,
    retry_after_us: u32,
    stop: AtomicBool,
    /// Router-level rejections (delivered by the router itself, so no
    /// shard counted them).
    rejected: AtomicU64,
    /// Subset of `rejected` that were backpressure hints.
    backpressured: AtomicU64,
    /// Submissions that had to skip a refusing shard.
    failovers: AtomicU64,
    /// Shards actually killed by the fault plan.
    kills: AtomicU64,
}

impl RouterCore {
    /// Healthy slot indices ranked by the active policy for key
    /// `(n, dtype)`.
    fn pick_order(&self, n: usize, dtype_tag: u8) -> Vec<usize> {
        let mut healthy: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].healthy.load(Ordering::SeqCst))
            .collect();
        match self.policy {
            RoutePolicy::ConsistentHash => {
                let key = mix((n as u64) << 8 | u64::from(dtype_tag));
                healthy.sort_by_key(|&i| std::cmp::Reverse(mix(key ^ self.slots[i].salt)));
            }
            RoutePolicy::LeastLoaded => {
                healthy.sort_by_key(|&i| (self.slots[i].backend.load(), i));
            }
        }
        healthy
    }

    fn submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        self.submit_inner(id, n, payload, deadline, sink, false);
    }

    /// Routes a large request: same shard selection, failover, and
    /// backpressure discipline as [`RouterCore::submit`], but admission
    /// goes through [`ShardBackend::try_submit_large`] so the owning
    /// shard schedules the matrix on its task-graph pool.
    fn submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        self.submit_inner(id, n, payload, deadline, sink, true);
    }

    fn submit_inner(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        large: bool,
    ) {
        let reject = |sink: ReplySink, reason: RejectReason| {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            sink.send(FactorReply {
                id,
                outcome: Outcome::Rejected(reason),
            });
        };
        let order = self.pick_order(n, payload.dtype().to_u8());
        let mut payload = payload;
        let mut sink = sink;
        for (attempt, &i) in order.iter().enumerate() {
            if attempt > 0 {
                self.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let slot = &self.slots[i];
            let admitted = if large {
                slot.backend
                    .try_submit_large(id, n, payload, deadline, sink)
            } else {
                slot.backend.try_submit(id, n, payload, deadline, sink)
            };
            match admitted {
                Ok(()) => {
                    slot.routed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err((RejectReason::QueueFull, _, s)) => {
                    // The shard this key belongs on is at capacity.
                    // Spilling to a colder shard would wreck its former's
                    // homogeneity and hide the hotspot, and blocking
                    // would stall every connection behind this one — so
                    // shed with a typed retry-after hint instead.
                    self.backpressured.fetch_add(1, Ordering::Relaxed);
                    return reject(
                        s,
                        RejectReason::Backpressure {
                            retry_after_us: self.retry_after_us,
                        },
                    );
                }
                Err((RejectReason::ShuttingDown, p, s)) => {
                    // The shard died between the health round and now:
                    // mark it unroutable and fail over.
                    slot.healthy.store(false, Ordering::SeqCst);
                    payload = p;
                    sink = s;
                }
                Err((reason, _, s)) => {
                    // BadDimension / BadPayload / DeadlineExceeded: the
                    // request itself is at fault, no shard can help.
                    return reject(s, reason);
                }
            }
        }
        // No healthy shard accepted.
        reject(sink, RejectReason::ShuttingDown);
    }

    /// One health round: maybe kill a shard (fault plan), then re-probe
    /// every slot.
    fn health_round(&self, fault: &FaultHook) {
        for slot in &self.slots {
            if let Some(FaultAction::KillShard) = fault.check(FaultSite::RouterShard) {
                let alive = self
                    .slots
                    .iter()
                    .filter(|s| s.healthy.load(Ordering::SeqCst))
                    .count();
                // Never take the whole fleet down: the last healthy
                // shard is immune.
                if alive > 1 && !slot.killed.swap(true, Ordering::SeqCst) {
                    slot.backend.kill();
                    self.kills.fetch_add(1, Ordering::Relaxed);
                }
            }
            let up = !slot.killed.load(Ordering::SeqCst) && slot.backend.probe();
            slot.healthy.store(up, Ordering::SeqCst);
        }
    }

    fn fleet_snapshot(&self) -> StatsSnapshot {
        let shards: Vec<ShardStat> = self
            .slots
            .iter()
            .map(|slot| ShardStat {
                name: slot.backend.name().to_string(),
                healthy: slot.healthy.load(Ordering::SeqCst),
                routed: slot.routed.load(Ordering::Relaxed),
                snapshot: slot.backend.stats(),
            })
            .collect();
        let mut fleet = shards
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s.snapshot));
        // Rejections the router delivered itself (backpressure, no
        // healthy shard) were never seen by any shard.
        fleet.rejected += self.rejected.load(Ordering::Relaxed);
        fleet.shards = Some(shards);
        fleet
    }
}

/// The shard tier's front door. Owns the health thread; hand
/// [`Router::client`] to the TCP server (it implements [`Frontend`]).
pub struct Router {
    core: Arc<RouterCore>,
    health: Option<JoinHandle<()>>,
}

impl Router {
    /// Starts a router over `shards` with the given config. The health
    /// thread probes every shard each `health_interval` and drives the
    /// fault plan's shard kills.
    pub fn start(shards: Vec<Arc<dyn ShardBackend>>, cfg: RouterConfig) -> Router {
        assert!(!shards.is_empty(), "router needs at least one shard");
        let slots: Vec<ShardSlot> = shards
            .into_iter()
            .enumerate()
            .map(|(i, backend)| ShardSlot {
                healthy: AtomicBool::new(backend.probe()),
                killed: AtomicBool::new(false),
                routed: AtomicU64::new(0),
                salt: mix(0xC0FFEE ^ (i as u64) << 17),
                backend,
            })
            .collect();
        let core = Arc::new(RouterCore {
            slots,
            policy: cfg.policy,
            retry_after_us: cfg.retry_after_us,
            stop: AtomicBool::new(false),
            rejected: AtomicU64::new(0),
            backpressured: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            kills: AtomicU64::new(0),
        });
        let health = {
            let core = core.clone();
            let fault = cfg.fault.clone();
            let interval = cfg.health_interval;
            std::thread::Builder::new()
                .name("ibcf-router-health".into())
                .spawn(move || {
                    while !core.stop.load(Ordering::SeqCst) {
                        core.health_round(&fault);
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn router health thread")
        };
        Router {
            core,
            health: Some(health),
        }
    }

    /// A cheap, cloneable submission handle (the [`Frontend`] the TCP
    /// server runs on).
    pub fn client(&self) -> RouterClient {
        RouterClient {
            core: self.core.clone(),
        }
    }

    /// Shards the fault plan killed.
    pub fn kills(&self) -> u64 {
        self.core.kills.load(Ordering::Relaxed)
    }

    /// Submissions that skipped at least one refusing shard.
    pub fn failovers(&self) -> u64 {
        self.core.failovers.load(Ordering::Relaxed)
    }

    /// Backpressure rejections the router handed out.
    pub fn backpressured(&self) -> u64 {
        self.core.backpressured.load(Ordering::Relaxed)
    }

    /// Stops the health thread, drains and shuts every shard down, and
    /// returns the final fleet snapshot (per-shard breakdown attached).
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.core.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        for slot in &self.core.slots {
            slot.backend.kill();
        }
        let t0 = Instant::now();
        while !self.core.slots.iter().all(|s| s.backend.drained())
            && t0.elapsed() < Duration::from_secs(30)
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        for slot in &self.core.slots {
            slot.backend.shutdown();
        }
        self.core.fleet_snapshot()
    }
}

/// Cloneable handle routing submissions across the fleet; the router's
/// [`Frontend`] implementation.
#[derive(Clone)]
pub struct RouterClient {
    core: Arc<RouterCore>,
}

impl RouterClient {
    /// Routes one request; the reply arrives through `sink` exactly once
    /// (inline for rejections and backpressure).
    pub fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        self.core.submit(id, n, payload, deadline, sink);
    }

    /// Routes one *large* request onto a shard's task-graph pool; same
    /// exactly-once sink contract as [`RouterClient::submit_sink`].
    pub fn submit_large_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        self.core.submit_large(id, n, payload, deadline, sink);
    }

    /// Fleet-merged counters with the per-shard breakdown attached.
    pub fn stats(&self) -> StatsSnapshot {
        self.core.fleet_snapshot()
    }

    /// Stops admission fleet-wide; queued work keeps draining.
    pub fn begin_drain(&self) {
        for slot in &self.core.slots {
            slot.healthy.store(false, Ordering::SeqCst);
            slot.backend.kill();
        }
    }

    /// `true` once every shard answered everything it admitted.
    pub fn drained(&self) -> bool {
        self.core.slots.iter().all(|s| s.backend.drained())
    }
}

impl Frontend for RouterClient {
    fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        _blocking: bool,
    ) {
        // The router never blocks: a full shard queue is a typed
        // backpressure reject, whatever the caller asked for.
        RouterClient::submit_sink(self, id, n, payload, deadline, sink);
    }

    fn submit_large_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        RouterClient::submit_large_sink(self, id, n, payload, deadline, sink);
    }

    fn stats(&self) -> StatsSnapshot {
        RouterClient::stats(self)
    }

    fn begin_drain(&self) {
        RouterClient::begin_drain(self);
    }

    fn drained(&self) -> bool {
        RouterClient::drained(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineSelector;
    use crate::fault::FaultPlan;
    use crate::service::ServiceConfig;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    /// A scripted backend: refuses with a fixed reason, or accepts and
    /// echoes the payload back as a factor.
    struct TestBackend {
        name: String,
        refuse: Mutex<Option<RejectReason>>,
        accepted: Mutex<Vec<u64>>,
        load: AtomicUsize,
    }

    impl TestBackend {
        fn new(name: &str) -> Arc<TestBackend> {
            Arc::new(TestBackend {
                name: name.to_string(),
                refuse: Mutex::new(None),
                accepted: Mutex::new(Vec::new()),
                load: AtomicUsize::new(0),
            })
        }

        fn refuse_with(&self, reason: Option<RejectReason>) {
            *self.refuse.lock().unwrap() = reason;
        }

        fn accepted_ids(&self) -> Vec<u64> {
            self.accepted.lock().unwrap().clone()
        }
    }

    impl ShardBackend for TestBackend {
        fn name(&self) -> &str {
            &self.name
        }

        fn try_submit(
            &self,
            id: u64,
            n: usize,
            payload: Payload,
            _deadline: Option<Instant>,
            sink: ReplySink,
        ) -> Result<(), SubmitRefusal> {
            let _ = n;
            if let Some(reason) = *self.refuse.lock().unwrap() {
                return Err((reason, payload, sink));
            }
            self.accepted.lock().unwrap().push(id);
            sink.send(FactorReply {
                id,
                outcome: Outcome::Factor(payload),
            });
            Ok(())
        }

        fn try_submit_large(
            &self,
            id: u64,
            n: usize,
            payload: Payload,
            deadline: Option<Instant>,
            sink: ReplySink,
        ) -> Result<(), SubmitRefusal> {
            self.try_submit(id, n, payload, deadline, sink)
        }

        fn probe(&self) -> bool {
            !matches!(
                *self.refuse.lock().unwrap(),
                Some(RejectReason::ShuttingDown)
            )
        }

        fn load(&self) -> usize {
            self.load.load(Ordering::Relaxed)
        }

        fn stats(&self) -> StatsSnapshot {
            StatsSnapshot {
                requests: self.accepted.lock().unwrap().len() as u64,
                ..StatsSnapshot::default()
            }
        }

        fn kill(&self) {
            self.refuse_with(Some(RejectReason::ShuttingDown));
        }

        fn drained(&self) -> bool {
            true
        }

        fn shutdown(&self) {}
    }

    fn fakes(n: usize) -> Vec<Arc<TestBackend>> {
        (0..n).map(|i| TestBackend::new(&format!("s{i}"))).collect()
    }

    fn as_backends(f: &[Arc<TestBackend>]) -> Vec<Arc<dyn ShardBackend>> {
        f.iter()
            .map(|b| b.clone() as Arc<dyn ShardBackend>)
            .collect()
    }

    fn call(client: &RouterClient, id: u64, n: usize) -> FactorReply {
        let (tx, rx) = mpsc::sync_channel(1);
        client.submit_sink(
            id,
            n,
            Payload::F32(vec![1.0; n * n]),
            None,
            ReplySink::boxed(move |r| drop(tx.send(r))),
        );
        rx.recv().expect("sink never invoked")
    }

    #[test]
    fn rendezvous_routing_is_stable_and_spreads_keys() {
        let f = fakes(4);
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        // Same key, many submissions: all land on one shard.
        for id in 0..32 {
            assert!(call(&client, id, 8).outcome.is_ok());
        }
        let owners: Vec<usize> = (0..4).map(|i| f[i].accepted_ids().len()).collect();
        assert_eq!(
            owners.iter().filter(|&&c| c > 0).count(),
            1,
            "one key must map to exactly one shard, got {owners:?}"
        );
        // Many distinct keys: more than one shard sees traffic.
        for (id, n) in (1..=32usize).enumerate() {
            assert!(call(&client, 100 + id as u64, n).outcome.is_ok());
        }
        let spread = (0..4).filter(|&i| !f[i].accepted_ids().is_empty()).count();
        assert!(spread > 1, "32 keys all hashed to one of 4 shards");
        router.shutdown();
    }

    #[test]
    fn failover_reroutes_live_traffic_off_a_dead_shard() {
        let f = fakes(3);
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        assert!(call(&client, 1, 6).outcome.is_ok());
        let owner = (0..3)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        // The owner dies without the health thread noticing yet: the
        // submit path itself must fail over.
        f[owner].kill();
        let reply = call(&client, 2, 6);
        assert!(reply.outcome.is_ok(), "failover failed: {reply:?}");
        assert_eq!(router.failovers(), 1);
        let new_owner = (0..3)
            .position(|i| i != owner && !f[i].accepted_ids().is_empty())
            .expect("no other shard accepted the rerouted request");
        // The rerouted key sticks to its new shard on the next submit.
        assert!(call(&client, 3, 6).outcome.is_ok());
        assert_eq!(f[new_owner].accepted_ids(), vec![2, 3]);
        // All shards dead: a typed ShuttingDown, not a hang.
        for b in &f {
            b.kill();
        }
        let reply = call(&client, 4, 6);
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
        router.shutdown();
    }

    fn call_large(client: &RouterClient, id: u64, n: usize) -> FactorReply {
        let (tx, rx) = mpsc::sync_channel(1);
        client.submit_large_sink(
            id,
            n,
            Payload::F32(vec![1.0; n * n]),
            None,
            ReplySink::boxed(move |r| drop(tx.send(r))),
        );
        rx.recv().expect("large sink never invoked")
    }

    #[test]
    fn large_requests_route_and_fail_over_like_small_ones() {
        let f = fakes(3);
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        assert!(call_large(&client, 1, 96).outcome.is_ok());
        let owner = (0..3)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        // The owner dies between health rounds: the large submit path
        // must fail over exactly like the batched one.
        f[owner].kill();
        let reply = call_large(&client, 2, 96);
        assert!(reply.outcome.is_ok(), "large failover failed: {reply:?}");
        assert_eq!(router.failovers(), 1);
        // A large key sticks to one shard (rendezvous), same as small.
        assert!(call_large(&client, 3, 96).outcome.is_ok());
        let new_owner = (0..3)
            .position(|i| i != owner && !f[i].accepted_ids().is_empty())
            .expect("no other shard accepted the rerouted large request");
        assert_eq!(f[new_owner].accepted_ids(), vec![2, 3]);
        router.shutdown();
    }

    #[test]
    fn full_queue_is_typed_backpressure_not_spill_or_block() {
        let f = fakes(2);
        let cfg = RouterConfig {
            retry_after_us: 777,
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        assert!(call(&client, 1, 5).outcome.is_ok());
        let owner = (0..2)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        f[owner].refuse_with(Some(RejectReason::QueueFull));
        let reply = call(&client, 2, 5);
        assert_eq!(
            reply.outcome,
            Outcome::Rejected(RejectReason::Backpressure {
                retry_after_us: 777
            }),
            "full queue must surface as a typed retry-after hint"
        );
        // No spill: the other shard saw nothing.
        assert!(f[1 - owner].accepted_ids().is_empty());
        assert_eq!(router.backpressured(), 1);
        assert_eq!(router.failovers(), 0);
        router.shutdown();
    }

    #[test]
    fn malformed_requests_reject_typed_without_failover() {
        let f = fakes(2);
        let router = Router::start(as_backends(&f), RouterConfig::default());
        let client = router.client();
        assert!(call(&client, 1, 4).outcome.is_ok());
        let owner = (0..2)
            .position(|i| !f[i].accepted_ids().is_empty())
            .unwrap();
        f[owner].refuse_with(Some(RejectReason::BadDimension));
        let reply = call(&client, 2, 4);
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::BadDimension));
        assert_eq!(router.failovers(), 0, "a bad request must not shard-hop");
        router.shutdown();
    }

    #[test]
    fn least_loaded_picks_the_shallowest_queue() {
        let f = fakes(2);
        let cfg = RouterConfig {
            policy: RoutePolicy::LeastLoaded,
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        f[0].load.store(5, Ordering::Relaxed);
        assert!(call(&client, 1, 4).outcome.is_ok());
        assert_eq!(f[1].accepted_ids(), vec![1]);
        f[0].load.store(0, Ordering::Relaxed);
        f[1].load.store(9, Ordering::Relaxed);
        assert!(call(&client, 2, 4).outcome.is_ok());
        assert_eq!(f[0].accepted_ids(), vec![2]);
        router.shutdown();
    }

    #[test]
    fn fault_plan_kills_shards_but_never_the_last_one() {
        let f = fakes(2);
        let cfg = RouterConfig {
            health_interval: Duration::from_millis(1),
            fault: FaultHook::from_plan(FaultPlan::shard_kill(99)),
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        // Let the health loop run well past both budgeted kill firings.
        let t0 = Instant::now();
        while router.kills() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            router.kills(),
            1,
            "the second budgeted kill must be refused (last healthy shard)"
        );
        let alive = f.iter().filter(|b| b.probe()).count();
        assert_eq!(alive, 1, "exactly one shard must survive");
        // And the survivor still serves.
        assert!(call(&client, 1, 4).outcome.is_ok());
        router.shutdown();
    }

    #[test]
    fn fleet_stats_merge_shards_and_count_router_rejects() {
        let f = fakes(2);
        let cfg = RouterConfig {
            retry_after_us: 50,
            ..RouterConfig::default()
        };
        let router = Router::start(as_backends(&f), cfg);
        let client = router.client();
        for id in 0..6 {
            // Distinct n per id so both shards likely see traffic.
            assert!(call(&client, id, 2 + id as usize).outcome.is_ok());
        }
        f[0].refuse_with(Some(RejectReason::QueueFull));
        f[1].refuse_with(Some(RejectReason::QueueFull));
        let r = call(&client, 99, 3);
        assert!(matches!(
            r.outcome,
            Outcome::Rejected(RejectReason::Backpressure { .. })
        ));
        let snap = Frontend::stats(&client);
        assert_eq!(snap.requests, 6, "fleet requests = sum of shards");
        assert_eq!(snap.rejected, 1, "router-level rejects count in fleet");
        let shards = snap.shards.expect("fleet snapshot carries shard list");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards.iter().map(|s| s.routed).sum::<u64>(), 6);
        assert_eq!(shards.iter().map(|s| s.snapshot.requests).sum::<u64>(), 6);
        router.shutdown();
    }

    /// End-to-end over real in-process services: route, kill a shard
    /// mid-stream, and require every request to get exactly one reply.
    #[test]
    fn in_process_fleet_survives_a_shard_kill_end_to_end() {
        let shards: Vec<Arc<dyn ShardBackend>> = (0..3)
            .map(|i| {
                let service = Service::start(
                    ServiceConfig {
                        max_delay: Duration::from_micros(200),
                        ..ServiceConfig::default()
                    },
                    EngineSelector::heuristic(),
                );
                Arc::new(InProcessShard::new(format!("shard-{i}"), service))
                    as Arc<dyn ShardBackend>
            })
            .collect();
        let router = Router::start(shards, RouterConfig::default());
        let client = router.client();
        let (tx, rx) = mpsc::channel::<FactorReply>();
        let total = 120u64;
        for id in 0..total {
            // Cycle a few sizes so rendezvous spreads the keys.
            let n = 2 + (id % 4) as usize;
            let mut a = vec![0.0f32; n * n];
            for d in 0..n {
                a[d * n + d] = 4.0;
            }
            let tx = tx.clone();
            client.submit_sink(
                id,
                n,
                Payload::F32(a),
                None,
                ReplySink::boxed(move |r| drop(tx.send(r))),
            );
            if id == total / 2 {
                // Kill one shard mid-stream, as the chaos plan would.
                router.core.slots[0].killed.store(true, Ordering::SeqCst);
                router.core.slots[0].backend.kill();
            }
        }
        drop(tx);
        let mut ids: Vec<u64> = rx.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..total).collect::<Vec<_>>(),
            "exactly one reply per request, even across a shard kill"
        );
        let snap = router.shutdown();
        let shards = snap.shards.expect("fleet snapshot has shard breakdown");
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(|s| s.routed).sum::<u64>(), total);
    }
}
