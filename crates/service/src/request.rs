//! Request and reply types shared by the in-process client, the batch
//! former, and the TCP codec.

use std::time::Instant;

/// Element type of a request's matrix payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dtype {
    /// Single precision (the paper's working precision).
    F32,
    /// Double precision.
    F64,
}

impl Dtype {
    /// Wire tag (stable across versions of the frame codec).
    pub fn to_u8(self) -> u8 {
        match self {
            Dtype::F32 => 0,
            Dtype::F64 => 1,
        }
    }

    /// Inverse of [`Dtype::to_u8`].
    pub fn from_u8(tag: u8) -> Option<Dtype> {
        match tag {
            0 => Some(Dtype::F32),
            1 => Some(Dtype::F64),
            _ => None,
        }
    }

    /// Bytes per element on the wire.
    pub fn elem_bytes(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F64 => 8,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Dtype {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "f32" => Ok(Dtype::F32),
            "f64" => Ok(Dtype::F64),
            other => Err(format!("unknown dtype {other} (use f32 or f64)")),
        }
    }
}

/// A column-major `n × n` matrix payload in either precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Single-precision elements.
    F32(Vec<f32>),
    /// Double-precision elements.
    F64(Vec<f64>),
}

impl Payload {
    /// The payload's element type.
    pub fn dtype(&self) -> Dtype {
        match self {
            Payload::F32(_) => Dtype::F32,
            Payload::F64(_) => Dtype::F64,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Payload::F32(v) => v.len(),
            Payload::F64(v) => v.len(),
        }
    }

    /// `true` if the payload holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why a request was turned away instead of factorized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The ingest queue is at capacity (admission control).
    QueueFull,
    /// `n` is zero or above the service's configured maximum.
    BadDimension,
    /// The payload length does not match `n × n`.
    BadPayload,
    /// The service is draining: admission has stopped, queued work is
    /// still being answered.
    ShuttingDown,
    /// The request's deadline expired before its batch was packed; dead
    /// work is shed, never factorized.
    DeadlineExceeded,
    /// The routed shard's queue is full and the router refuses to block:
    /// resubmit no sooner than `retry_after_us` microseconds from now.
    /// Unlike the other reasons this one is a *hint*, not a verdict —
    /// the request is welcome back after the window.
    Backpressure {
        /// Earliest sensible resubmission delay, in microseconds.
        retry_after_us: u32,
    },
}

impl RejectReason {
    /// Wire tag. `Backpressure` additionally carries its retry-after
    /// hint in the reply's aux field (it travels as its own reply
    /// status, see `codec`), so the tag alone does not round-trip it —
    /// [`RejectReason::from_u8`] is the inverse for tags 0–4 only.
    pub fn to_u8(self) -> u8 {
        match self {
            RejectReason::QueueFull => 0,
            RejectReason::BadDimension => 1,
            RejectReason::BadPayload => 2,
            RejectReason::ShuttingDown => 3,
            RejectReason::DeadlineExceeded => 4,
            RejectReason::Backpressure { .. } => 5,
        }
    }

    /// Inverse of [`RejectReason::to_u8`] for the hint-less reasons.
    /// `Backpressure` decodes through its dedicated reply status (the
    /// aux field carries the hint), never through this table.
    pub fn from_u8(tag: u8) -> Option<RejectReason> {
        match tag {
            0 => Some(RejectReason::QueueFull),
            1 => Some(RejectReason::BadDimension),
            2 => Some(RejectReason::BadPayload),
            3 => Some(RejectReason::ShuttingDown),
            4 => Some(RejectReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// Human-readable description.
    pub fn describe(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "ingest queue full",
            RejectReason::BadDimension => "bad matrix dimension",
            RejectReason::BadPayload => "payload length != n*n",
            RejectReason::ShuttingDown => "service shutting down",
            RejectReason::DeadlineExceeded => "deadline expired before packing",
            RejectReason::Backpressure { .. } => "shard at capacity, retry after hint",
        }
    }
}

/// Per-request result. `Factor` carries the full square buffer: the lower
/// triangle (diagonal included) holds `L`, the strictly-upper part is the
/// submitted data untouched — the LAPACK `potrf` convention.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Factorization succeeded.
    Factor(Payload),
    /// The matrix is not positive definite; the pivot at `column` failed.
    NotSpd {
        /// First failing column.
        column: usize,
    },
    /// A NaN or infinity surfaced at `column`.
    NonFinite {
        /// First non-finite column.
        column: usize,
    },
    /// The worker executing this request's batch panicked; the batch was
    /// abandoned and the worker restarted. The request was *not*
    /// factorized — resubmitting is safe (factorization is idempotent).
    WorkerCrashed,
    /// The shard process (or its connection) holding this request died
    /// with the request still in flight. The request was *not*
    /// factorized — resubmitting is safe. The router converts the first
    /// loss into a transparent resubmission to a healthy shard; a second
    /// loss surfaces this outcome to the caller.
    ShardLost,
    /// The request was never factorized (admission refusal, shutdown, or
    /// a deadline expiring before packing).
    Rejected(RejectReason),
}

impl Outcome {
    /// `true` for a successful factorization.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Factor(_))
    }
}

/// A completed request, correlated by the id the submitter chose.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorReply {
    /// Caller-chosen correlation id, echoed verbatim.
    pub id: u64,
    /// What happened.
    pub outcome: Outcome,
}

/// Where a finished reply goes: consumed exactly once per request, from a
/// worker thread (or inline at submit time for rejections).
///
/// A concrete enum rather than a boxed closure so the hot path can *see*
/// the destination: a worker holding a [`ReplySink::Frame`] sink encodes
/// the reply frame straight out of its reusable gather scratch instead of
/// allocating an owned [`Payload`] per reply (see `service::execute_batch`).
/// The boxed form survives as the escape hatch for tests and adapters.
pub enum ReplySink {
    /// Deliver into a bounded in-process channel — the `submit`/`call`
    /// path, where the caller blocks on the receiver.
    Channel(std::sync::mpsc::SyncSender<FactorReply>),
    /// Encode a reply frame and hand the bytes to a TCP connection's
    /// writer thread — the serving hot path. Carries the request's dtype
    /// so workers can encode from raw element slices.
    Frame {
        /// The connection writer's inbox; a send failure means the
        /// connection is gone and the reply is dropped with it.
        tx: std::sync::mpsc::Sender<Vec<u8>>,
        /// Element type the reply frame must carry.
        dtype: Dtype,
    },
    /// Arbitrary closure (tests, routing adapters, shard renumbering).
    Boxed(Box<dyn FnOnce(FactorReply) + Send + 'static>),
}

impl ReplySink {
    /// A sink delivering into a bounded channel.
    pub fn channel(tx: std::sync::mpsc::SyncSender<FactorReply>) -> ReplySink {
        ReplySink::Channel(tx)
    }

    /// A sink encoding reply frames for a connection writer.
    pub fn frame(tx: std::sync::mpsc::Sender<Vec<u8>>, dtype: Dtype) -> ReplySink {
        ReplySink::Frame { tx, dtype }
    }

    /// A sink wrapping an arbitrary closure.
    pub fn boxed<F: FnOnce(FactorReply) + Send + 'static>(f: F) -> ReplySink {
        ReplySink::Boxed(Box::new(f))
    }

    /// Delivers the reply, consuming the sink. Channel/frame send
    /// failures mean the receiver is gone; the reply is dropped, which is
    /// the correct fate for an answer nobody is waiting on.
    pub fn send(self, reply: FactorReply) {
        match self {
            ReplySink::Channel(tx) => drop(tx.send(reply)),
            ReplySink::Frame { tx, dtype } => {
                drop(tx.send(crate::codec::reply_frame(&reply, dtype)));
            }
            ReplySink::Boxed(f) => f(reply),
        }
    }
}

impl std::fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplySink::Channel(_) => "ReplySink::Channel",
            ReplySink::Frame { .. } => "ReplySink::Frame",
            ReplySink::Boxed(_) => "ReplySink::Boxed",
        })
    }
}

/// A queued request: payload plus everything needed to route and time the
/// reply.
pub struct Pending {
    /// Caller-chosen correlation id.
    pub id: u64,
    /// Matrix dimension.
    pub n: usize,
    /// Column-major `n × n` input.
    pub payload: Payload,
    /// When the request entered the ingest queue (latency clock start).
    pub enqueued: Instant,
    /// The latest instant the caller still wants an answer. Propagates
    /// queue → former: an expired request is shed with
    /// [`RejectReason::DeadlineExceeded`] before packing, and the
    /// former's flush deadline tightens to the soonest member deadline.
    pub deadline: Option<Instant>,
    /// Reply destination.
    pub sink: ReplySink,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("id", &self.id)
            .field("n", &self.n)
            .field("dtype", &self.payload.dtype())
            .finish()
    }
}
