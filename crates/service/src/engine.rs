//! Per-batch engine selection: the serving-time consumer of the
//! autotuning corpus.
//!
//! The sweep's winning [`KernelConfig`](ibcf_kernels::KernelConfig) per
//! size describes a *device* kernel, but its structural axes — chunked vs
//! plain interleave, chunk size, looking order — are exactly the knobs of
//! the host lane engine too (the host mirror the paper's layouts were
//! built to serve; see `ibcf_core::lane_batch`). An [`EngineSelector`]
//! maps the dispatch table's winner for `n` onto an [`EnginePlan`] the
//! workers execute, and falls back to the zero-measurement heuristic when
//! no sweep has ever been run.

use ibcf_autotune::heuristics::heuristic_config;
use ibcf_autotune::{best_config, DispatchTable, ParamSpace};
use ibcf_core::lane_batch::{LaneOrder, LaneWidth};
use ibcf_core::{LaneBackend, Looking, Real};
use ibcf_gpu_sim::GpuSpec;
use ibcf_kernels::KernelConfig;
use ibcf_layout::{Layout, LayoutKind};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The host engine parameters one formed batch runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnginePlan {
    /// Interleave family for the packed buffer.
    pub kind: LayoutKind,
    /// Chunk size when `kind` is `Chunked` (a multiple of 32).
    pub chunk: usize,
    /// Loop order of the lane-vectorized factorization.
    pub order: LaneOrder,
    /// Matrices per lockstep group.
    pub width: LaneWidth,
    /// Lane arithmetic backend: runtime-dispatched SIMD (default) or the
    /// forced autovectorized path. Bitwise-identical either way.
    pub backend: LaneBackend,
}

impl EnginePlan {
    /// Concrete lane count for element type `T`.
    pub fn lanes<T: Real>(&self) -> usize {
        self.width.lanes::<T>()
    }

    /// The packed layout for `batch` matrices of dimension `n`.
    pub fn layout(&self, n: usize, batch: usize) -> Layout {
        Layout::build(self.kind, n, batch, self.chunk)
    }
}

/// Maps a tuned kernel configuration onto the host engine's knobs.
fn plan_of(config: &KernelConfig) -> EnginePlan {
    EnginePlan {
        kind: if config.chunked {
            LayoutKind::Chunked
        } else {
            LayoutKind::Interleaved
        },
        chunk: config.chunk_size.max(32),
        // Top-looking has no unblocked counterpart; its lazy-column
        // character matches the left-looking lane order.
        order: match config.looking {
            Looking::Right => LaneOrder::Right,
            Looking::Left | Looking::Top => LaneOrder::Left,
        },
        width: LaneWidth::Auto,
        backend: LaneBackend::Auto,
    }
}

/// The model-guided middle tier of the fallback chain: picks the analytic
/// model's top-ranked configuration for a size, memoized per `n` (the
/// ranking walks the whole parameter space, so a hot serving path must
/// not recompute it per request).
#[derive(Debug, Clone)]
struct AnalyticTier {
    spec: GpuSpec,
    batch: usize,
    memo: Arc<Mutex<BTreeMap<usize, KernelConfig>>>,
}

impl AnalyticTier {
    fn config_for(&self, n: usize) -> KernelConfig {
        let mut memo = self.memo.lock().expect("analytic memo lock");
        *memo
            .entry(n)
            .or_insert_with(|| best_config(&ParamSpace::paper(), n, self.batch, &self.spec))
    }
}

/// Chooses an [`EnginePlan`] per matrix dimension through a fallback
/// chain: the tuned dispatch table when one exists, else the analytic
/// model's pick when a GPU spec was given, else the zero-measurement
/// §11 heuristic.
#[derive(Debug, Clone, Default)]
pub struct EngineSelector {
    table: Option<DispatchTable>,
    analytic: Option<AnalyticTier>,
    backend: LaneBackend,
}

impl EngineSelector {
    /// A selector answering purely from the no-sweep heuristic.
    pub fn heuristic() -> Self {
        EngineSelector::default()
    }

    /// A selector backed by a tuned dispatch table.
    pub fn from_table(table: DispatchTable) -> Self {
        let table = if table.is_empty() { None } else { Some(table) };
        EngineSelector {
            table,
            ..EngineSelector::default()
        }
    }

    /// Loads a dispatch table saved by `ibcf tune`. A corrupt file is an
    /// error (never a silent fallback); a missing *optional* table should
    /// be handled by the caller calling [`EngineSelector::heuristic`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        Ok(Self::from_table(DispatchTable::load(path)?))
    }

    /// Adds the analytic middle tier: sizes the dispatch table cannot
    /// answer are resolved by the analytic model for `spec` at `batch`
    /// instead of dropping straight to the heuristic.
    pub fn with_analytic(mut self, spec: GpuSpec, batch: usize) -> Self {
        self.analytic = Some(AnalyticTier {
            spec,
            batch,
            memo: Arc::new(Mutex::new(BTreeMap::new())),
        });
        self
    }

    /// Forces every plan this selector produces onto `backend` — the
    /// `serve --autovec` escape hatch and the A/B axis of the service
    /// benches. The default is [`LaneBackend::Auto`] (SIMD where the
    /// machine has it).
    pub fn with_backend(mut self, backend: LaneBackend) -> Self {
        self.backend = backend;
        self
    }

    /// `true` if a sweep backs this selector.
    pub fn is_tuned(&self) -> bool {
        self.table.is_some()
    }

    /// `true` if the analytic middle tier is configured.
    pub fn has_analytic(&self) -> bool {
        self.analytic.is_some()
    }

    /// The engine plan for dimension `n`, through the fallback chain.
    pub fn plan(&self, n: usize) -> EnginePlan {
        let config = self
            .table
            .as_ref()
            .and_then(|t| t.config_for(n))
            .or_else(|| self.analytic.as_ref().map(|a| a.config_for(n)))
            .unwrap_or_else(|| heuristic_config(n));
        EnginePlan {
            backend: self.backend,
            ..plan_of(&config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_selector_yields_lane_compatible_plans() {
        let sel = EngineSelector::heuristic();
        assert!(!sel.is_tuned());
        for n in 1..=40 {
            let plan = sel.plan(n);
            let lanes = plan.lanes::<f32>();
            let layout = plan.layout(n, 3 * lanes + 1);
            assert!(
                ibcf_core::lane_batch::lane_compatible::<f32, _>(&layout, plan.width),
                "n={n} {plan:?}"
            );
        }
    }

    #[test]
    fn tuned_table_overrides_the_heuristic() {
        let mut table = DispatchTable::default();
        table.table.insert(
            16,
            KernelConfig {
                chunked: false,
                looking: Looking::Right,
                ..KernelConfig::baseline(16)
            },
        );
        let sel = EngineSelector::from_table(table);
        assert!(sel.is_tuned());
        let plan = sel.plan(16);
        assert_eq!(plan.kind, LayoutKind::Interleaved);
        assert_eq!(plan.order, LaneOrder::Right);
        // Nearby sizes interpolate through the table, not the heuristic.
        assert_eq!(sel.plan(17).kind, LayoutKind::Interleaved);
    }

    #[test]
    fn empty_table_falls_back_to_heuristic() {
        let sel = EngineSelector::from_table(DispatchTable::default());
        assert!(!sel.is_tuned());
        assert_eq!(sel.plan(16).kind, LayoutKind::Chunked);
    }

    #[test]
    fn analytic_tier_sits_between_table_and_heuristic() {
        let sel = EngineSelector::heuristic().with_analytic(GpuSpec::p100(), 4096);
        assert!(!sel.is_tuned());
        assert!(sel.has_analytic());
        // The analytic pick must produce a lane-compatible plan, and the
        // memo must make repeated queries answer identically.
        for n in [8usize, 24, 40] {
            let plan = sel.plan(n);
            assert_eq!(plan, sel.plan(n), "n={n}");
            let lanes = plan.lanes::<f32>();
            let layout = plan.layout(n, 2 * lanes + 1);
            assert!(
                ibcf_core::lane_batch::lane_compatible::<f32, _>(&layout, plan.width),
                "n={n} {plan:?}"
            );
        }
        // A tuned table still wins over the analytic tier.
        let mut table = DispatchTable::default();
        table.table.insert(
            16,
            KernelConfig {
                chunked: false,
                looking: Looking::Right,
                ..KernelConfig::baseline(16)
            },
        );
        let sel = EngineSelector::from_table(table).with_analytic(GpuSpec::p100(), 4096);
        assert_eq!(sel.plan(16).kind, LayoutKind::Interleaved);
    }

    #[test]
    fn with_backend_threads_into_every_plan() {
        let sel = EngineSelector::heuristic();
        assert_eq!(sel.plan(16).backend, LaneBackend::Auto);
        let sel = sel.with_backend(LaneBackend::Autovec);
        for n in [4usize, 16, 48] {
            assert_eq!(sel.plan(n).backend, LaneBackend::Autovec, "n={n}");
        }
    }
}
