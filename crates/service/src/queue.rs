//! The bounded ingest queue between clients and the batch former.
//!
//! One mutex-guarded deque with two condvars — `not_empty` wakes the
//! former, `not_full` wakes blocked producers. Admission control is the
//! non-blocking [`IngestQueue::try_push`] (full queue → the request is
//! handed back and the caller rejects it); backpressure is the blocking
//! [`IngestQueue::push_wait`] for embedded clients that prefer to stall
//! over shedding load.

use crate::request::Pending;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a blocking [`IngestQueue::push_wait`] handed the request back.
/// Carries the [`Pending`] so the caller rejects it through its own sink.
#[derive(Debug)]
pub enum PushRefused {
    /// The queue closed (shutdown) before space appeared.
    ShuttingDown(Pending),
    /// The request's own deadline expired while parked at capacity;
    /// waiting longer could only produce dead work.
    DeadlineExceeded(Pending),
}

struct State {
    deque: VecDeque<Pending>,
    closed: bool,
}

/// A bounded MPSC queue of pending requests.
pub struct IngestQueue {
    state: Mutex<State>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl IngestQueue {
    /// A queue admitting at most `cap` queued requests.
    ///
    /// # Panics
    /// If `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        IngestQueue {
            state: Mutex::new(State {
                deque: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().deque.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the queue stopped admitting (drain/shutdown began).
    /// The router's health probe reads this: a closed queue means the
    /// shard will refuse everything routed its way.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Non-blocking admission: queues the request, or hands it back when
    /// the queue is full or closed (`Err` carries the request so the
    /// caller can reject it with its own sink).
    pub fn try_push(&self, p: Pending) -> Result<(), (Pending, bool)> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err((p, true));
        }
        if s.deque.len() >= self.cap {
            return Err((p, false));
        }
        s.deque.push_back(p);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking submission: waits for space (backpressure) instead of
    /// shedding. A producer parked at capacity is woken the moment the
    /// queue closes — shutdown must never leave it blocked forever — and
    /// handed the request back as [`PushRefused::ShuttingDown`]; a parked
    /// request whose own deadline passes comes back as
    /// [`PushRefused::DeadlineExceeded`] without ever entering the queue.
    pub fn push_wait(&self, p: Pending) -> Result<(), PushRefused> {
        let mut s = self.state.lock().unwrap();
        while s.deque.len() >= self.cap && !s.closed {
            match p.deadline {
                None => s = self.not_full.wait(s).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(PushRefused::DeadlineExceeded(p));
                    }
                    s = self.not_full.wait_timeout(s, d - now).unwrap().0;
                }
            }
        }
        if s.closed {
            return Err(PushRefused::ShuttingDown(p));
        }
        s.deque.push_back(p);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Drains everything currently queued, waiting until at least one
    /// request is available or `deadline` passes (`None` = wait until
    /// something arrives or the queue closes). An empty result with
    /// `closed = false` means the deadline fired; `closed = true` means no
    /// more requests will ever arrive.
    pub fn drain_until(&self, deadline: Option<Instant>) -> (Vec<Pending>, bool) {
        let mut s = self.state.lock().unwrap();
        loop {
            if !s.deque.is_empty() {
                let out: Vec<Pending> = s.deque.drain(..).collect();
                let closed = s.closed;
                drop(s);
                self.not_full.notify_all();
                return (out, closed);
            }
            if s.closed {
                return (Vec::new(), true);
            }
            match deadline {
                None => s = self.not_empty.wait(s).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return (Vec::new(), false);
                    }
                    let (guard, timeout) = self.not_empty.wait_timeout(s, d - now).unwrap();
                    s = guard;
                    if timeout.timed_out() && s.deque.is_empty() {
                        return (Vec::new(), s.closed);
                    }
                }
            }
        }
    }

    /// Closes the queue: producers are refused from now on, and the former
    /// drains whatever is left.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{FactorReply, Payload, ReplySink};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn pending(id: u64) -> Pending {
        Pending {
            id,
            n: 2,
            payload: Payload::F32(vec![0.0; 4]),
            enqueued: Instant::now(),
            deadline: None,
            sink: ReplySink::boxed(|_: FactorReply| {}),
        }
    }

    #[test]
    fn try_push_rejects_when_full() {
        let q = IngestQueue::new(2);
        assert!(q.try_push(pending(0)).is_ok());
        assert!(q.try_push(pending(1)).is_ok());
        let (back, closed) = q.try_push(pending(2)).unwrap_err();
        assert_eq!(back.id, 2);
        assert!(!closed);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_waits_for_deadline_then_returns_empty() {
        let q = IngestQueue::new(4);
        let t0 = Instant::now();
        let (items, closed) = q.drain_until(Some(t0 + Duration::from_millis(20)));
        assert!(items.is_empty());
        assert!(!closed);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn push_wait_applies_backpressure_until_consumer_drains() {
        let q = Arc::new(IngestQueue::new(1));
        q.try_push(pending(0)).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let (q2, d2) = (q.clone(), done.clone());
        let producer = std::thread::spawn(move || {
            q2.push_wait(pending(1)).unwrap();
            d2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 0, "producer must be blocked");
        let (items, _) = q.drain_until(None);
        assert_eq!(items.len(), 1);
        producer.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn blocked_push_observes_shutdown_instead_of_parking_forever() {
        // Regression: a blocking submit parked at capacity must come back
        // with ShuttingDown when the queue closes underneath it — the
        // former never drains again after shutdown starts, so nothing
        // else would ever wake it.
        let q = Arc::new(IngestQueue::new(1));
        q.try_push(pending(0)).unwrap();
        let parked = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (1..=3u64)
            .map(|id| {
                let (q2, p2) = (q.clone(), parked.clone());
                std::thread::spawn(move || {
                    p2.fetch_add(1, Ordering::SeqCst);
                    q2.push_wait(pending(id))
                })
            })
            .collect();
        while parked.load(Ordering::SeqCst) < 3 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(20)); // let them park
        q.close();
        for (i, h) in producers.into_iter().enumerate() {
            match h.join().unwrap() {
                Err(PushRefused::ShuttingDown(p)) => assert_eq!(p.id, i as u64 + 1),
                other => panic!("producer {i} got {other:?}"),
            }
        }
    }

    #[test]
    fn parked_push_respects_its_own_deadline() {
        let q = IngestQueue::new(1);
        q.try_push(pending(0)).unwrap();
        let mut p = pending(1);
        p.deadline = Some(Instant::now() + Duration::from_millis(25));
        let t0 = Instant::now();
        match q.push_wait(p) {
            Err(PushRefused::DeadlineExceeded(back)) => assert_eq!(back.id, 1),
            other => panic!("expected deadline refusal, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(q.len(), 1, "the expired request never entered");
    }

    #[test]
    fn close_wakes_everyone() {
        let q = Arc::new(IngestQueue::new(4));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.drain_until(None));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        let (items, closed) = consumer.join().unwrap();
        assert!(items.is_empty());
        assert!(closed);
        assert!(q.try_push(pending(9)).is_err());
    }
}
