//! Dynamic-batching factorization service.
//!
//! The paper's batched kernels assume someone already has thousands of
//! small SPD matrices in one interleaved buffer. This crate closes the
//! loop for the serving case where matrices arrive one at a time:
//!
//! 1. an [`IngestQueue`](queue::IngestQueue) admits requests under a
//!    hard bound (non-blocking rejection or blocking backpressure);
//! 2. a [former](former) groups them by `(n, dtype)` and flushes each
//!    group on a size threshold or a deadline, packing payloads into a
//!    128-byte-aligned interleaved buffer padded to a full lane group;
//! 3. a worker pool factorizes each batch in place with the
//!    lane-vectorized engine, under the layout/order the
//!    [`EngineSelector`](engine::EngineSelector) picked from a tuned
//!    [`DispatchTable`](ibcf_autotune::DispatchTable) (heuristics when
//!    no sweep log exists), and routes per-matrix failures back to
//!    exactly the originating request;
//! 4. [`ServiceStats`](stats::ServiceStats) tracks counters, a batch
//!    occupancy histogram, and reply-latency percentiles;
//! 5. a std::net TCP front-end ([`server`]) speaks a length-prefixed
//!    binary frame protocol ([`codec`]), and a [load generator](loadgen)
//!    drives it in closed- or open-loop arrivals.

#![warn(missing_docs)]

pub mod codec;
pub mod engine;
pub mod former;
pub mod loadgen;
pub mod queue;
pub mod request;
pub mod server;
pub mod service;
pub mod stats;

pub use engine::{EnginePlan, EngineSelector};
pub use former::{FormerConfig, PackedData};
pub use loadgen::{ArrivalMode, LoadReport, LoadgenConfig};
pub use request::{Dtype, FactorReply, Outcome, Payload, RejectReason};
pub use server::{TcpConn, TcpServer};
pub use service::{Client, Service, ServiceConfig};
pub use stats::{ServiceStats, StatsSnapshot};
