//! Dynamic-batching factorization service.
//!
//! The paper's batched kernels assume someone already has thousands of
//! small SPD matrices in one interleaved buffer. This crate closes the
//! loop for the serving case where matrices arrive one at a time:
//!
//! 1. an [`IngestQueue`](queue::IngestQueue) admits requests under a
//!    hard bound (non-blocking rejection or blocking backpressure);
//! 2. a [former](former) groups them by `(n, dtype)` and flushes each
//!    group on a size threshold or a deadline, scattering each payload
//!    **once** directly into a 128-byte-aligned interleaved buffer
//!    padded in place to a full lane group (the fused zero-copy ingest
//!    path; the legacy stage-then-pack round trip survives as
//!    [`IngestMode::Staged`](former::IngestMode) for A/B reference) —
//!    shedding any request whose own deadline already expired;
//! 3. a supervised worker pool factorizes each batch in place with the
//!    lane-vectorized engine — explicit AVX2/AVX-512 kernels where the
//!    CPU has them, autovectorized fallback otherwise — under the
//!    layout/order the
//!    [`EngineSelector`](engine::EngineSelector) picked from a tuned
//!    [`DispatchTable`](ibcf_autotune::DispatchTable) (heuristics when
//!    no sweep log exists), and routes per-matrix failures back to
//!    exactly the originating request; a panicking batch yields typed
//!    [`Outcome::WorkerCrashed`] replies and a restarted worker, never
//!    a dead process;
//! 4. [`ServiceStats`](stats::ServiceStats) tracks counters, a batch
//!    occupancy histogram, and reply-latency percentiles;
//! 5. a std::net TCP front-end ([`server`]) speaks a length-prefixed
//!    binary frame protocol ([`codec`]) with typed frame errors and
//!    graceful drain, and a [load generator](loadgen) drives it in
//!    closed- or open-loop arrivals with reconnect/resubmit retry;
//! 6. a seeded [fault-injection harness](fault) can be threaded through
//!    every stage to prove, reproducibly, that each admitted request
//!    receives exactly one reply under worker panics, stalls,
//!    connection drops, and frame corruption;
//! 7. a [router](router) fronts N shards (in-process or TCP) with
//!    rendezvous or least-loaded routing keyed by `(n, dtype)`,
//!    health-checked failover, per-shard circuit breakers, optional
//!    hedged requests, deterministic shard kills, and typed
//!    [`Backpressure`](request::RejectReason::Backpressure) retry-after
//!    rejects instead of blocking;
//! 8. a [fleet supervisor](fleet) pushes isolation to the OS level:
//!    each shard is a real child process (`ibcf serve --shard-child`)
//!    that the supervisor spawns, health-reaps, SIGKILL-chaos-tests,
//!    and respawns with capped backoff — in-flight requests lost with
//!    a process come back as typed
//!    [`ShardLost`](request::Outcome::ShardLost) replies the router
//!    transparently resubmits once.

#![warn(missing_docs)]

pub mod codec;
pub mod engine;
pub mod fault;
pub mod fleet;
pub mod former;
pub mod loadgen;
pub mod queue;
pub mod request;
pub mod retry;
pub mod router;
pub mod server;
pub mod service;
pub mod stats;

pub use codec::FrameError;
pub use engine::{EnginePlan, EngineSelector};
pub use fault::{FaultAction, FaultHook, FaultPlan, FaultSite};
pub use fleet::{Fleet, FleetConfig, ProcessShard, SHARD_READY_PREFIX};
pub use former::{FormerConfig, IngestMode, PackedData};
pub use loadgen::{ArrivalMode, LoadReport, LoadgenConfig};
pub use queue::PushRefused;
pub use request::{Dtype, FactorReply, Outcome, Payload, RejectReason, ReplySink};
pub use retry::RetryPolicy;
pub use router::{
    InProcessShard, RoutePolicy, Router, RouterClient, RouterConfig, ShardBackend, TcpShard,
};
pub use server::{TcpConn, TcpServer};
pub use service::{Client, Frontend, Service, ServiceConfig};
pub use stats::{BreakerStat, FleetStat, ServiceStats, ShardStat, StatsSnapshot};
