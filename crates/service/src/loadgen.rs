//! Load generator for a running `ibcf serve` instance.
//!
//! Drives the TCP front-end with a mix of matrix sizes in one of two
//! arrival disciplines:
//!
//! * **closed-loop** — each connection keeps a fixed window of requests
//!   outstanding, so offered load tracks service capacity (throughput
//!   measurement at saturation);
//! * **open-loop** — requests depart on a fixed schedule regardless of
//!   replies, so a slow server sheds load through admission control
//!   (latency/rejection measurement under a target arrival rate).
//!
//! A configurable fraction of requests is *planted* non-SPD (`-I`); the
//! generator asserts each one comes back as its own `NotSpd` reply while
//! its same-batch neighbors succeed — the end-to-end check that failure
//! routing never smears across a batch.
//!
//! With a [`RetryPolicy`] enabled the generator is *resilient*: a
//! dropped, corrupted, or stalled connection is reconnected with
//! exponential backoff and every request that never got a reply is
//! resubmitted (factorization is idempotent, and the lost connection
//! took its undelivered replies with it, so this preserves the
//! exactly-one-reply invariant). The report tallies duplicates and lost
//! replies so a chaos run can assert both are zero.

use crate::codec::{
    decode_factor_reply, encode_factor_req, read_frame, wire_deadline_us, write_frame,
    K_FACTOR_REPLY, K_FACTOR_REQ, K_LARGE_REQ,
};
use crate::request::{Dtype, Outcome, Payload, RejectReason};
use crate::retry::RetryPolicy;
use crate::server::TcpConn;
use crate::stats::StatsSnapshot;
use ibcf_core::spd::{random_spd, SpdKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How requests are released.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalMode {
    /// Keep `window` requests outstanding per connection.
    Closed {
        /// Outstanding requests per connection.
        window: usize,
    },
    /// Depart at `rate` requests/second (aggregate, split across
    /// connections), never waiting for replies.
    Open {
        /// Aggregate arrival rate in requests per second.
        rate: f64,
    },
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Matrix sizes, cycled per request.
    pub sizes: Vec<usize>,
    /// Element type of every request.
    pub dtype: Dtype,
    /// Total requests across all connections.
    pub requests: u64,
    /// Concurrent connections.
    pub conns: usize,
    /// Arrival discipline.
    pub mode: ArrivalMode,
    /// Number of planted non-SPD requests, spread evenly.
    pub plant_bad: u64,
    /// RNG seed for the payload pool.
    pub seed: u64,
    /// Per-request relative deadline sent on the wire (`None` = no
    /// deadline).
    pub deadline: Option<Duration>,
    /// Reconnect/resubmit policy for lost or stalled connections.
    pub retry: RetryPolicy,
    /// Socket read timeout: a stalled connection is declared dead (and,
    /// with retry enabled, replaced) after this long without a reply.
    pub read_timeout: Duration,
    /// Every `large_every`-th request (0 = never) is sent as a
    /// large-matrix request (`K_LARGE_REQ`): it bypasses the batch
    /// former and schedules on the server's task-graph pool, mixing the
    /// two serving paths in one run.
    pub large_every: u64,
    /// Dimension of the large requests.
    pub large_n: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7117".into(),
            sizes: vec![16],
            dtype: Dtype::F32,
            requests: 100_000,
            conns: 4,
            mode: ArrivalMode::Closed { window: 256 },
            plant_bad: 0,
            seed: 1,
            deadline: None,
            retry: RetryPolicy::disabled(),
            read_timeout: Duration::from_secs(60),
            large_every: 0,
            large_n: 128,
        }
    }
}

/// What the run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Unique requests submitted (resubmissions not double-counted).
    pub sent: u64,
    /// Successful factor replies.
    pub ok: u64,
    /// Planted requests correctly reported non-SPD.
    pub planted_caught: u64,
    /// Requests rejected by admission control (queue full, deadline
    /// exceeded, shutdown).
    pub rejected: u64,
    /// Backpressure hints received; each was resubmitted after (never
    /// before) its `retry_after_us` delay elapsed.
    pub backpressured: u64,
    /// Requests whose batch's worker panicked (typed `WorkerCrashed`)
    /// or whose shard process died twice in flight (typed `ShardLost`
    /// after the router's one transparent resubmission).
    pub crashed: u64,
    /// Replies carrying an id that was not outstanding: a duplicate
    /// answer. Must be zero — the exactly-one-reply invariant.
    pub duplicates: u64,
    /// Requests that never received any reply. Must be zero.
    pub lost: u64,
    /// Successful reconnections after a dropped or stalled connection.
    pub reconnects: u64,
    /// Replies that contradicted expectations (good request failed,
    /// planted request succeeded, wrong column).
    pub mismatched: u64,
    /// Wall-clock of the send/receive phase.
    pub elapsed: Duration,
    /// Completed (non-rejected) replies per second.
    pub throughput: f64,
    /// Client-measured send-to-reply latency percentiles, microseconds.
    pub p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean batch occupancy on the server over this run's batches.
    pub mean_occupancy: f64,
    /// Server stats after the run.
    pub server: StatsSnapshot,
}

impl LoadReport {
    /// `true` when every reply matched expectations and the
    /// exactly-one-reply invariant held: nothing lost, nothing answered
    /// twice.
    pub fn clean(&self) -> bool {
        self.mismatched == 0 && self.duplicates == 0 && self.lost == 0
    }

    /// One-paragraph human-readable summary; a routed fleet gets one
    /// extra line per shard plus the fleet-wide totals.
    pub fn render(&self) -> String {
        let mut out = format!(
            "sent {} requests in {:.3} s: {} ok, {} planted non-SPD caught, \
             {} rejected, {} backpressured, {} crashed, {} mismatched\n\
             invariant: {} lost, {} duplicates, {} reconnects\n\
             throughput {:.0} matrices/s, \
             latency p50/p95/p99 = {:.0}/{:.0}/{:.0} us, \
             mean batch occupancy {:.1}%",
            self.sent,
            self.elapsed.as_secs_f64(),
            self.ok,
            self.planted_caught,
            self.rejected,
            self.backpressured,
            self.crashed,
            self.mismatched,
            self.lost,
            self.duplicates,
            self.reconnects,
            self.throughput,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            100.0 * self.mean_occupancy,
        );
        if self.server.large_requests > 0 {
            out.push_str(&format!(
                "\n  large (task-graph path): {} requests, {} ok, {} failed",
                self.server.large_requests, self.server.large_ok, self.server.large_failed,
            ));
        }
        if let Some(shards) = &self.server.shards {
            for sh in shards {
                let (p50, _, p99) = sh.snapshot.percentiles_us();
                out.push_str(&format!(
                    "\n  shard {} [{}]: {} routed, {} served, \
                     p50/p99 = {:.0}/{:.0} us",
                    sh.name,
                    if sh.healthy { "up" } else { "down" },
                    sh.routed,
                    sh.snapshot.requests,
                    p50,
                    p99,
                ));
            }
            out.push_str(&format!(
                "\n  fleet: {} requests, {} rejected, {} batches across {} shards",
                self.server.requests,
                self.server.rejected,
                self.server.batches,
                shards.len(),
            ));
        }
        out
    }
}

/// Pre-generated payloads: a small pool of SPD matrices per size (reused
/// round-robin so generation cost stays out of the send path) plus the
/// planted non-SPD payload (`-I`).
struct PayloadPool {
    good: HashMap<usize, Vec<Payload>>,
    bad: HashMap<usize, Payload>,
}

const POOL_PER_SIZE: usize = 16;

fn neg_identity(n: usize, dtype: Dtype) -> Payload {
    match dtype {
        Dtype::F32 => {
            let mut m = vec![0.0f32; n * n];
            for d in 0..n {
                m[d * n + d] = -1.0;
            }
            Payload::F32(m)
        }
        Dtype::F64 => {
            let mut m = vec![0.0f64; n * n];
            for d in 0..n {
                m[d * n + d] = -1.0;
            }
            Payload::F64(m)
        }
    }
}

impl PayloadPool {
    fn build(sizes: &[usize], dtype: Dtype, seed: u64) -> PayloadPool {
        let mut good = HashMap::new();
        let mut bad = HashMap::new();
        for &n in sizes {
            if good.contains_key(&n) {
                continue;
            }
            let pool: Vec<Payload> = (0..POOL_PER_SIZE)
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (n as u64) << 32 ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    match dtype {
                        Dtype::F32 => Payload::F32(
                            random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec(),
                        ),
                        Dtype::F64 => Payload::F64(
                            random_spd::<f64>(n, SpdKind::Wishart, &mut rng).into_vec(),
                        ),
                    }
                })
                .collect();
            good.insert(n, pool);
            bad.insert(n, neg_identity(n, dtype));
        }
        PayloadPool { good, bad }
    }
}

/// `true` if global request index `r` is a planted non-SPD request
/// (spreads `plant_bad` requests evenly over `total`).
fn is_planted(r: u64, total: u64, plant_bad: u64) -> bool {
    if plant_bad == 0 {
        return false;
    }
    // The index where ⌊r·plant/total⌋ increments.
    (r + 1) * plant_bad / total != r * plant_bad / total
}

/// Shared between a connection's pacing loop and its reader thread.
/// `sent_at` doubles as the outstanding set: a reply removes its entry,
/// a reconnect resubmits whatever is still present.
struct ConnState {
    sent_at: HashMap<u64, Instant>,
    outstanding: usize,
    replied: u64,
    conn_dead: bool,
    ok: u64,
    planted_caught: u64,
    rejected: u64,
    backpressured: u64,
    crashed: u64,
    duplicates: u64,
    mismatched: u64,
    latencies_ns: Vec<u64>,
    /// Backpressured requests parked until their retry-after hint
    /// elapses: `(request id, earliest resubmission instant)`.
    retry_at: Vec<(u64, Instant)>,
}

/// Pops every parked retry whose hinted delay has elapsed, re-registers
/// it as outstanding, and returns the ids to resubmit (sorted, for
/// deterministic wire order). Requests still inside their hint window
/// stay parked — the contract is *after* the hint, never before.
fn take_due_retries(s: &mut ConnState, now: Instant) -> Vec<u64> {
    let mut due = Vec::new();
    s.retry_at.retain(|&(r, at)| {
        if at <= now {
            due.push(r);
            false
        } else {
            true
        }
    });
    due.sort_unstable();
    for &r in &due {
        s.sent_at.insert(r, now);
        s.outstanding += 1;
    }
    due
}

/// Earliest instant any parked retry becomes due.
fn earliest_retry(s: &ConnState) -> Option<Instant> {
    s.retry_at.iter().map(|&(_, at)| at).min()
}

struct ConnTally {
    ok: u64,
    planted_caught: u64,
    rejected: u64,
    backpressured: u64,
    crashed: u64,
    duplicates: u64,
    mismatched: u64,
    reconnects: u64,
    sent: u64,
    replied: u64,
    latencies_ns: Vec<u64>,
}

type Shared = Arc<(Mutex<ConnState>, Condvar)>;

/// Consumes reply frames until every expected reply arrived or the
/// connection dies (error, EOF, desync, or read timeout). Always leaves
/// `conn_dead` accurate and wakes the pacing loop on exit.
fn reader_loop(stream: TcpStream, state: Shared, total: u64, plant_bad: u64, expected: u64) {
    let mut reader = BufReader::new(stream);
    // Anything but a well-formed factor reply — desync (unknown kind,
    // e.g. a corrupted kind byte), EOF mid-run, torn frame, i/o error,
    // read timeout, or a corrupted reply body — kills the connection.
    while let Ok(Some((K_FACTOR_REPLY, body))) = read_frame(&mut reader) {
        let Ok(reply) = decode_factor_reply(&body) else {
            break;
        };
        let now = Instant::now();
        let (lock, cvar) = &*state;
        let mut s = lock.lock().unwrap();
        let r = reply.id;
        match s.sent_at.remove(&r) {
            None => {
                // Not outstanding: either never sent on this run or —
                // the invariant violation chaos hunts — answered twice.
                s.duplicates += 1;
            }
            Some(at) => {
                s.outstanding = s.outstanding.saturating_sub(1);
                if let Outcome::Rejected(RejectReason::Backpressure { retry_after_us }) =
                    reply.outcome
                {
                    // Not a terminal answer: the fleet asked us to come
                    // back later. Park the request until the hint
                    // elapses — the pacing/wait loops resubmit it no
                    // sooner than `retry_after_us` from now.
                    s.backpressured += 1;
                    s.retry_at
                        .push((r, now + Duration::from_micros(u64::from(retry_after_us))));
                } else {
                    s.replied += 1;
                    s.latencies_ns
                        .push(now.duration_since(at).as_nanos() as u64);
                    let planted = is_planted(r, total, plant_bad);
                    match (&reply.outcome, planted) {
                        (Outcome::Factor(_), false) => s.ok += 1,
                        (Outcome::NotSpd { column: 0 }, true) => s.planted_caught += 1,
                        // A planted request in a crashed batch
                        // legitimately comes back WorkerCrashed — it
                        // never reached the pivot check. ShardLost is
                        // the process-death analogue: the router already
                        // resubmitted once, a second loss surfaces here
                        // and tallies with the crashes.
                        (Outcome::WorkerCrashed, _) | (Outcome::ShardLost, _) => s.crashed += 1,
                        (Outcome::Rejected(_), _) => s.rejected += 1,
                        _ => s.mismatched += 1,
                    }
                }
            }
        }
        let done = s.replied >= expected;
        cvar.notify_all();
        if done {
            return;
        }
    }
    let (lock, cvar) = &*state;
    let mut s = lock.lock().unwrap();
    s.conn_dead = true;
    cvar.notify_all();
}

/// One connection's closed- or open-loop exchange, surviving connection
/// loss when the retry policy allows. `ids` are the global request
/// indices this connection owns.
fn run_conn(
    addr: &str,
    ids: Vec<u64>,
    cfg: &LoadgenConfig,
    pool: &PayloadPool,
    per_conn_rate: f64,
) -> io::Result<ConnTally> {
    let total = cfg.requests;
    let expected = ids.len() as u64;
    let is_large = |r: u64| cfg.large_every > 0 && (r + 1).is_multiple_of(cfg.large_every);
    let n_of = |r: u64| {
        if is_large(r) {
            cfg.large_n
        } else {
            cfg.sizes[(r % cfg.sizes.len() as u64) as usize]
        }
    };
    // Large requests ride the task-graph path; the reply shape is
    // identical, so nothing downstream cares which kind went out.
    let kind_of = |r: u64| {
        if is_large(r) {
            K_LARGE_REQ
        } else {
            K_FACTOR_REQ
        }
    };
    let payload_of = |r: u64| -> &Payload {
        let n = n_of(r);
        if is_planted(r, total, cfg.plant_bad) {
            &pool.bad[&n]
        } else {
            &pool.good[&n][(r as usize / cfg.sizes.len().max(1)) % POOL_PER_SIZE]
        }
    };
    // wire_deadline_us clamps a sub-microsecond deadline up to 1 µs —
    // truncating to 0 would silently mean "no deadline at all".
    let deadline_us: u32 = wire_deadline_us(cfg.deadline);
    let state: Shared = Arc::new((
        Mutex::new(ConnState {
            sent_at: HashMap::with_capacity(1024),
            outstanding: 0,
            replied: 0,
            conn_dead: false,
            ok: 0,
            planted_caught: 0,
            rejected: 0,
            backpressured: 0,
            crashed: 0,
            duplicates: 0,
            mismatched: 0,
            latencies_ns: Vec::with_capacity(expected as usize),
            retry_at: Vec::new(),
        }),
        Condvar::new(),
    ));
    let mut next_idx = 0usize; // first id not yet sent at all
    let mut attempt = 0u32; // consecutive no-progress recovery attempts
    let mut reconnects = 0u64;
    let start = Instant::now();
    loop {
        let replied_before = state.0.lock().unwrap().replied;
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                attempt += 1;
                if attempt >= cfg.retry.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(cfg.retry.backoff(attempt));
                continue;
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        {
            let mut s = state.0.lock().unwrap();
            s.conn_dead = false;
        }
        let reader = {
            let state = state.clone();
            let plant_bad = cfg.plant_bad;
            std::thread::Builder::new()
                .name("ibcf-loadgen-reader".into())
                .spawn(move || reader_loop(stream, state, total, plant_bad, expected))
                .expect("spawn loadgen reader")
        };

        // Resubmit everything outstanding from the previous connection:
        // those replies died with it, so resubmission keeps
        // exactly-one-reply (factorization is idempotent).
        let resend: Vec<u64> = {
            let mut s = state.0.lock().unwrap();
            let mut v: Vec<u64> = s.sent_at.keys().copied().collect();
            v.sort_unstable();
            let now = Instant::now();
            for r in &v {
                s.sent_at.insert(*r, now); // latency clock restarts
            }
            v
        };
        let mut write_err = false;
        for &r in &resend {
            let body = encode_factor_req(r, n_of(r), deadline_us, payload_of(r));
            if write_frame(&mut writer, kind_of(r), &body).is_err() {
                write_err = true;
                break;
            }
        }

        // Pace the remaining first-time sends.
        while !write_err && next_idx < ids.len() {
            // Backpressured requests whose hint elapsed go first. They
            // bypass the closed-loop window: the server already admitted
            // them once, and making them queue behind fresh sends would
            // stretch their hinted delay unboundedly.
            let due = {
                let mut s = state.0.lock().unwrap();
                take_due_retries(&mut s, Instant::now())
            };
            for &r in &due {
                let body = encode_factor_req(r, n_of(r), deadline_us, payload_of(r));
                if write_frame(&mut writer, kind_of(r), &body).is_err() {
                    write_err = true;
                }
            }
            if write_err {
                break;
            }
            let r = ids[next_idx];
            let paced = match cfg.mode {
                ArrivalMode::Closed { window } => {
                    let (lock, cvar) = &*state;
                    let mut s = lock.lock().unwrap();
                    if s.outstanding >= window.max(1) && !s.conn_dead {
                        // About to block on replies: everything recorded
                        // as outstanding must actually be on the wire.
                        drop(s);
                        if writer.flush().is_err() {
                            write_err = true;
                            continue;
                        }
                        s = lock.lock().unwrap();
                        while s.outstanding >= window.max(1) && !s.conn_dead {
                            s = cvar.wait(s).unwrap();
                        }
                    }
                    if s.conn_dead {
                        None
                    } else {
                        s.outstanding += 1;
                        s.sent_at.insert(r, Instant::now());
                        Some(())
                    }
                }
                ArrivalMode::Open { .. } => {
                    let due = start + Duration::from_secs_f64(next_idx as f64 / per_conn_rate);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let (lock, _) = &*state;
                    let mut s = lock.lock().unwrap();
                    if s.conn_dead {
                        None
                    } else {
                        s.outstanding += 1;
                        s.sent_at.insert(r, Instant::now());
                        Some(())
                    }
                }
            };
            if paced.is_none() {
                break; // connection died mid-pacing; reconnect resubmits
            }
            let body = encode_factor_req(r, n_of(r), deadline_us, payload_of(r));
            if write_frame(&mut writer, kind_of(r), &body).is_err() {
                write_err = true;
            }
            next_idx += 1;
            // Open-loop must flush every departure to honor the pacing
            // schedule; closed-loop flushes just before it blocks.
            if matches!(cfg.mode, ArrivalMode::Open { .. }) && writer.flush().is_err() {
                write_err = true;
            }
        }
        let _ = writer.flush();

        // Wait for the reader to finish this connection: every reply
        // arrived, the connection died, or a backpressured request came
        // due and must be resubmitted (written outside the lock so a
        // blocked socket can never deadlock the reader).
        loop {
            let due: Vec<u64> = {
                let (lock, cvar) = &*state;
                let mut s = lock.lock().unwrap();
                loop {
                    if s.replied >= expected || s.conn_dead {
                        break Vec::new();
                    }
                    let due = take_due_retries(&mut s, Instant::now());
                    if !due.is_empty() {
                        break due;
                    }
                    let timeout = earliest_retry(&s)
                        .map(|at| at.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_secs(3600))
                        .max(Duration::from_micros(50));
                    s = cvar.wait_timeout(s, timeout).unwrap().0;
                }
            };
            if due.is_empty() {
                break;
            }
            let mut retry_write_err = false;
            for &r in &due {
                let body = encode_factor_req(r, n_of(r), deadline_us, payload_of(r));
                if write_frame(&mut writer, kind_of(r), &body).is_err() {
                    retry_write_err = true;
                }
            }
            if writer.flush().is_err() || retry_write_err {
                // Write side is gone; the reader's timeout backstop will
                // flag the connection dead and trigger a reconnect.
                break;
            }
        }
        // The reader owns the stream and exits on reply completion,
        // error, EOF, or its read timeout (the backstop when only the
        // write side failed).
        reader.join().expect("loadgen reader panicked");

        let s = state.0.lock().unwrap();
        if s.replied >= expected {
            break;
        }
        let progressed = s.replied > replied_before;
        drop(s);
        if progressed {
            attempt = 0;
        }
        attempt += 1;
        if attempt >= cfg.retry.max_attempts {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!("connection lost and retry budget exhausted after {attempt} attempts"),
            ));
        }
        reconnects += 1;
        std::thread::sleep(cfg.retry.backoff(attempt));
    }
    let mut s = state.0.lock().unwrap();
    let latencies_ns = std::mem::take(&mut s.latencies_ns);
    Ok(ConnTally {
        ok: s.ok,
        planted_caught: s.planted_caught,
        rejected: s.rejected,
        backpressured: s.backpressured,
        crashed: s.crashed,
        duplicates: s.duplicates,
        mismatched: s.mismatched,
        reconnects,
        sent: expected,
        replied: s.replied,
        latencies_ns,
    })
}

/// Fetches server stats, retrying under the config's policy (chaos plans
/// can drop the stats connection too).
fn fetch_stats_retrying(cfg: &LoadgenConfig) -> io::Result<StatsSnapshot> {
    let mut attempt = 0u32;
    loop {
        match TcpConn::connect(&cfg.addr).and_then(|mut c| c.fetch_stats()) {
            Ok(snap) => return Ok(snap),
            Err(e) => {
                attempt += 1;
                if attempt >= cfg.retry.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(cfg.retry.backoff(attempt));
            }
        }
    }
}

/// Runs the configured load against a server and returns the report.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    assert!(!cfg.sizes.is_empty(), "need at least one matrix size");
    assert!(cfg.conns > 0, "need at least one connection");
    assert!(cfg.requests > 0, "need at least one request");
    let mut pool_sizes = cfg.sizes.clone();
    if cfg.large_every > 0 {
        assert!(cfg.large_n > 0, "large_n must be positive");
        pool_sizes.push(cfg.large_n);
    }
    let pool = Arc::new(PayloadPool::build(&pool_sizes, cfg.dtype, cfg.seed));

    // Delta baseline so a long-lived server's history doesn't dilute this
    // run's occupancy measurement.
    let before = fetch_stats_retrying(cfg)?;

    let per_conn_rate = match cfg.mode {
        ArrivalMode::Open { rate } => (rate / cfg.conns as f64).max(1.0),
        ArrivalMode::Closed { .. } => f64::MAX,
    };
    let start = Instant::now();
    let tallies: Vec<io::Result<ConnTally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|c| {
                let ids: Vec<u64> = (0..cfg.requests)
                    .filter(|r| (*r as usize) % cfg.conns == c)
                    .collect();
                let (pool, cfg) = (pool.clone(), cfg.clone());
                scope.spawn(move || run_conn(&cfg.addr, ids, &cfg, &pool, per_conn_rate))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut sent = 0;
    let mut ok = 0;
    let mut planted_caught = 0;
    let mut rejected = 0;
    let mut backpressured = 0;
    let mut crashed = 0;
    let mut duplicates = 0;
    let mut mismatched = 0;
    let mut reconnects = 0;
    let mut replied = 0;
    let mut latencies: Vec<u64> = Vec::new();
    for tally in tallies {
        let t = tally?;
        sent += t.sent;
        ok += t.ok;
        planted_caught += t.planted_caught;
        rejected += t.rejected;
        backpressured += t.backpressured;
        crashed += t.crashed;
        duplicates += t.duplicates;
        mismatched += t.mismatched;
        reconnects += t.reconnects;
        replied += t.replied;
        latencies.extend(t.latencies_ns);
    }
    latencies.sort_unstable();
    let pct = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx] as f64 / 1000.0
    };

    let after = fetch_stats_retrying(cfg)?;
    let batches_delta = after.batches.saturating_sub(before.batches);
    let mean_occupancy = if batches_delta == 0 {
        0.0
    } else {
        // Reconstruct the per-window mean from the two lifetime means.
        let sum_after = after.mean_occupancy * after.batches as f64;
        let sum_before = before.mean_occupancy * before.batches as f64;
        ((sum_after - sum_before) / batches_delta as f64).clamp(0.0, 1.0)
    };

    Ok(LoadReport {
        sent,
        ok,
        planted_caught,
        rejected,
        backpressured,
        crashed,
        duplicates,
        lost: sent.saturating_sub(replied),
        reconnects,
        mismatched,
        elapsed,
        throughput: (ok + planted_caught) as f64 / elapsed.as_secs_f64(),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_occupancy,
        server: after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_spread_is_even_and_exact() {
        for (total, plant) in [(100u64, 10u64), (97, 7), (50, 0), (10, 10), (1000, 1)] {
            let count = (0..total).filter(|&r| is_planted(r, total, plant)).count() as u64;
            assert_eq!(count, plant, "total={total} plant={plant}");
            // Even spread: no two planted indices closer than half the
            // ideal gap (except the degenerate all-planted case).
            if plant > 1 && plant < total {
                let planted: Vec<u64> = (0..total)
                    .filter(|&r| is_planted(r, total, plant))
                    .collect();
                let min_gap = planted.windows(2).map(|w| w[1] - w[0]).min().unwrap();
                assert!(min_gap >= total / plant / 2, "gap {min_gap}");
            }
        }
    }

    #[test]
    fn retries_fire_after_the_hint_never_before() {
        let mut s = ConnState {
            sent_at: HashMap::new(),
            outstanding: 0,
            replied: 0,
            conn_dead: false,
            ok: 0,
            planted_caught: 0,
            rejected: 0,
            backpressured: 0,
            crashed: 0,
            duplicates: 0,
            mismatched: 0,
            latencies_ns: Vec::new(),
            retry_at: Vec::new(),
        };
        let t0 = Instant::now();
        s.retry_at.push((7, t0 + Duration::from_micros(500)));
        s.retry_at.push((3, t0 + Duration::from_micros(500)));
        s.retry_at.push((9, t0 + Duration::from_millis(50)));

        // Before any hint elapses: nothing is due.
        assert!(take_due_retries(&mut s, t0).is_empty());
        assert_eq!(s.outstanding, 0);
        assert_eq!(earliest_retry(&s), Some(t0 + Duration::from_micros(500)));

        // One microsecond short of the first hint: still nothing.
        assert!(take_due_retries(&mut s, t0 + Duration::from_micros(499)).is_empty());

        // First hint elapsed: exactly those two fire, sorted, and are
        // re-registered as outstanding; the later one stays parked.
        let due = take_due_retries(&mut s, t0 + Duration::from_micros(500));
        assert_eq!(due, vec![3, 7]);
        assert_eq!(s.outstanding, 2);
        assert!(s.sent_at.contains_key(&3) && s.sent_at.contains_key(&7));
        assert_eq!(earliest_retry(&s), Some(t0 + Duration::from_millis(50)));

        // And the stragglers fire once their own hint elapses.
        assert_eq!(
            take_due_retries(&mut s, t0 + Duration::from_millis(50)),
            vec![9]
        );
        assert!(s.retry_at.is_empty());
        assert_eq!(earliest_retry(&s), None);
    }

    #[test]
    fn pool_has_good_and_bad_payloads_per_size() {
        let pool = PayloadPool::build(&[4, 8, 4], Dtype::F32, 7);
        assert_eq!(pool.good.len(), 2);
        assert_eq!(pool.good[&4].len(), POOL_PER_SIZE);
        let Payload::F32(bad) = &pool.bad[&8] else {
            panic!("wrong dtype");
        };
        assert_eq!(bad[0], -1.0);
        assert_eq!(bad.len(), 64);
    }

    #[test]
    fn clean_requires_the_invariant() {
        let base = LoadReport {
            sent: 10,
            ok: 10,
            planted_caught: 0,
            rejected: 0,
            backpressured: 2,
            crashed: 0,
            duplicates: 0,
            lost: 0,
            reconnects: 3,
            mismatched: 0,
            elapsed: Duration::from_secs(1),
            throughput: 10.0,
            p50_us: 0.0,
            p95_us: 0.0,
            p99_us: 0.0,
            mean_occupancy: 1.0,
            server: StatsSnapshot::default(),
        };
        assert!(
            base.clean(),
            "reconnects and honored backpressure don't dirty a run"
        );
        assert!(!LoadReport {
            lost: 1,
            ..base.clone()
        }
        .clean());
        assert!(!LoadReport {
            duplicates: 1,
            ..base.clone()
        }
        .clean());
        assert!(!LoadReport {
            mismatched: 1,
            ..base
        }
        .clean());
    }
}
