//! The service: ingest queue → batch former → tuned-engine worker pool,
//! with an in-process [`Client`] handle.
//!
//! Thread shape: one former thread owns the consumer side of the
//! [`IngestQueue`]; `workers` threads share a `sync_channel` of
//! [`FormedBatch`]es. Each worker factorizes its batch in place with
//! [`factorize_batch_auto_with`] under the plan the [`EngineSelector`]
//! chose, then routes every per-matrix outcome — factor or non-SPD
//! failure — back to exactly the originating request's sink.

use crate::engine::EngineSelector;
use crate::former::{run_former, FormedBatch, FormerConfig, PackedData};
use crate::queue::IngestQueue;
use crate::request::{FactorReply, Outcome, Payload, Pending, RejectReason, ReplySink};
use crate::stats::{ServiceStats, StatsSnapshot};
use ibcf_core::lane_batch::factorize_batch_auto_with;
use ibcf_core::{CholeskyError, Real};
use ibcf_layout::{gather_matrix, Layout};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing formed batches.
    pub workers: usize,
    /// Ingest queue capacity (admission-control bound).
    pub queue_cap: usize,
    /// Batch former size threshold.
    pub max_batch: usize,
    /// Batch former deadline.
    pub max_delay: Duration,
    /// Largest admissible matrix dimension.
    pub max_n: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_cap: 8192,
            max_batch: 1024,
            max_delay: Duration::from_millis(1),
            max_n: 64,
        }
    }
}

struct Inner {
    queue: Arc<IngestQueue>,
    stats: Arc<ServiceStats>,
    max_n: usize,
    tuned: bool,
}

/// A running factorization service. Dropping without
/// [`Service::shutdown`] detaches the threads; shut down for a clean
/// exit.
pub struct Service {
    inner: Arc<Inner>,
    former: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the former and worker threads.
    pub fn start(config: ServiceConfig, selector: EngineSelector) -> Service {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let queue = Arc::new(IngestQueue::new(config.queue_cap));
        let stats = Arc::new(ServiceStats::default());
        let inner = Arc::new(Inner {
            queue: queue.clone(),
            stats: stats.clone(),
            max_n: config.max_n,
            tuned: selector.is_tuned(),
        });
        // Shallow channel: the former should stall (and keep accumulating
        // arrivals into bigger batches) when workers are saturated, not
        // buffer an unbounded backlog of packed buffers.
        let (batch_tx, batch_rx) = sync_channel::<FormedBatch>(2 * config.workers);
        let former_cfg = FormerConfig {
            max_batch: config.max_batch,
            max_delay: config.max_delay,
        };
        let former = {
            let (q, s) = (queue, stats.clone());
            std::thread::Builder::new()
                .name("ibcf-former".into())
                .spawn(move || run_former(q, selector, former_cfg, s, batch_tx))
                .expect("spawn former")
        };
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let workers = (0..config.workers)
            .map(|w| {
                let (rx, s) = (batch_rx.clone(), stats.clone());
                std::thread::Builder::new()
                    .name(format!("ibcf-worker-{w}"))
                    .spawn(move || run_worker(&rx, &s))
                    .expect("spawn worker")
            })
            .collect();
        Service {
            inner,
            former: Some(former),
            workers,
        }
    }

    /// A submission handle. Clients stay valid until shutdown; submissions
    /// after shutdown are rejected with [`RejectReason::Closed`].
    pub fn client(&self) -> Client {
        Client {
            inner: self.inner.clone(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Closes the queue, drains everything already admitted, and joins
    /// all threads. Every admitted request receives its reply before this
    /// returns.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.inner.queue.close();
        if let Some(former) = self.former.take() {
            former.join().expect("former panicked");
        }
        // The former dropped the batch sender; workers drain and exit.
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
        self.inner.stats.snapshot()
    }
}

/// Factorizes one formed batch in place and distributes replies.
fn run_worker(rx: &Mutex<Receiver<FormedBatch>>, stats: &ServiceStats) {
    loop {
        let batch = {
            let guard = rx.lock().unwrap();
            match guard.recv() {
                Ok(b) => b,
                Err(_) => return, // former gone and channel drained
            }
        };
        execute_batch(batch, stats);
    }
}

fn execute_batch(mut batch: FormedBatch, stats: &ServiceStats) {
    let layout = batch.layout;
    let plan = batch.plan;
    let failures = match &mut batch.data {
        PackedData::F32(data) => {
            factorize_batch_auto_with(&layout, data.as_mut_slice(), plan.order, plan.width).failures
        }
        PackedData::F64(data) => {
            factorize_batch_auto_with(&layout, data.as_mut_slice(), plan.order, plan.width).failures
        }
    };
    let n = batch.n;
    // `failures` is sorted by matrix index; walk it alongside the
    // requests so each failure lands on exactly its originator.
    let mut fail_iter = failures.into_iter().peekable();
    for (mat, req) in batch.reqs.into_iter().enumerate() {
        let failure = match fail_iter.peek() {
            Some(&(idx, _)) if idx == mat => fail_iter.next().map(|(_, e)| e),
            _ => None,
        };
        let outcome = match failure {
            Some(CholeskyError::NotPositiveDefinite { column }) => Outcome::NotSpd { column },
            Some(CholeskyError::NonFinite { column }) => Outcome::NonFinite { column },
            None => Outcome::Factor(gather_payload(&layout, &batch.data, mat, n)),
        };
        if outcome.is_ok() {
            stats.replies_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.replies_failed.fetch_add(1, Ordering::Relaxed);
        }
        stats.record_latency(req.enqueued.elapsed());
        (req.sink)(FactorReply {
            id: req.id,
            outcome,
        });
    }
    // Any remaining failure would sit in a padding slot — impossible,
    // padding is the identity matrix.
    debug_assert!(
        fail_iter.peek().is_none(),
        "failure reported for an identity padding slot"
    );
}

fn gather_payload(layout: &Layout, data: &PackedData, mat: usize, n: usize) -> Payload {
    fn full_square<T: Real>(layout: &Layout, data: &[T], mat: usize, n: usize) -> Vec<T> {
        let mut out = vec![T::ZERO; n * n];
        gather_matrix(layout, data, mat, &mut out, n);
        out
    }
    match data {
        PackedData::F32(v) => Payload::F32(full_square(layout, v.as_slice(), mat, n)),
        PackedData::F64(v) => Payload::F64(full_square(layout, v.as_slice(), mat, n)),
    }
}

/// An in-process submission handle (cheap to clone, `Send`).
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// `true` if the service was started from a tuned dispatch table.
    pub fn is_tuned(&self) -> bool {
        self.inner.tuned
    }

    /// Current counters (serves the `stats` request).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Largest admissible `n`.
    pub fn max_n(&self) -> usize {
        self.inner.max_n
    }

    /// Submits a request, delivering the reply through `sink`. With
    /// `blocking` the call waits for queue space (backpressure);
    /// otherwise a full queue rejects immediately (admission control).
    /// The sink is always invoked exactly once, inline for rejections.
    pub fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        sink: ReplySink,
        blocking: bool,
    ) {
        let reject = |sink: ReplySink, reason: RejectReason, stats: &ServiceStats| {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            sink(FactorReply {
                id,
                outcome: Outcome::Rejected(reason),
            });
        };
        if n == 0 || n > self.inner.max_n {
            return reject(sink, RejectReason::BadDimension, &self.inner.stats);
        }
        if payload.len() != n * n {
            return reject(sink, RejectReason::BadPayload, &self.inner.stats);
        }
        let pending = Pending {
            id,
            n,
            payload,
            enqueued: Instant::now(),
            sink,
        };
        let outcome = if blocking {
            self.inner
                .queue
                .push_wait(pending)
                .map_err(|p| (p, RejectReason::Closed))
        } else {
            self.inner.queue.try_push(pending).map_err(|(p, closed)| {
                let reason = if closed {
                    RejectReason::Closed
                } else {
                    RejectReason::QueueFull
                };
                (p, reason)
            })
        };
        match outcome {
            Ok(()) => {
                self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
            }
            Err((p, reason)) => reject(p.sink, reason, &self.inner.stats),
        }
    }

    /// Submits and returns a receiver for the reply (non-blocking
    /// admission).
    pub fn submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
    ) -> std::sync::mpsc::Receiver<FactorReply> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_sink(id, n, payload, Box::new(move |r| drop(tx.send(r))), false);
        rx
    }

    /// Submits with backpressure and waits for the reply.
    pub fn call(&self, id: u64, n: usize, payload: Payload) -> FactorReply {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_sink(id, n, payload, Box::new(move |r| drop(tx.send(r))), true);
        rx.recv().expect("reply sink dropped without reply")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_core::spd::{random_spd, SpdKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd_vec<T: Real>(n: usize, seed: u64) -> Vec<T> {
        let mut rng = StdRng::seed_from_u64(seed);
        random_spd::<T>(n, SpdKind::Wishart, &mut rng).into_vec()
    }

    fn spd_payload(n: usize, seed: u64) -> Payload {
        Payload::F32(spd_vec(n, seed))
    }

    fn neg_identity(n: usize) -> Payload {
        let mut m = vec![0.0f32; n * n];
        for d in 0..n {
            m[d * n + d] = -1.0;
        }
        Payload::F32(m)
    }

    fn check_factor(n: usize, input: &Payload, reply: &FactorReply) {
        let Outcome::Factor(Payload::F32(out)) = &reply.outcome else {
            panic!("expected a factor, got {:?}", reply.outcome);
        };
        let Payload::F32(a) = input else {
            unreachable!()
        };
        // L·Lᵀ ≈ A on the lower triangle.
        for col in 0..n {
            for row in col..n {
                let mut sum = 0.0f64;
                for k in 0..=col.min(row) {
                    sum += out[k * n + row] as f64 * out[k * n + col] as f64;
                }
                let want = a[col * n + row] as f64;
                assert!(
                    (sum - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "n={n} ({row},{col}): {sum} vs {want}"
                );
            }
        }
        // Strict upper triangle is the input, untouched.
        for col in 1..n {
            for row in 0..col {
                assert_eq!(out[col * n + row], a[col * n + row]);
            }
        }
    }

    #[test]
    fn end_to_end_factorization_round_trip() {
        let service = Service::start(
            ServiceConfig {
                workers: 2,
                max_delay: Duration::from_millis(2),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let inputs: Vec<(u64, usize, Payload)> = (0..40)
            .map(|i| {
                let n = [3, 8, 16, 17][i as usize % 4];
                (i, n, spd_payload(n, 1000 + i))
            })
            .collect();
        let receivers: Vec<_> = inputs
            .iter()
            .map(|(id, n, p)| client.submit(*id, *n, p.clone()))
            .collect();
        for ((id, n, input), rx) in inputs.iter().zip(receivers) {
            let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(reply.id, *id);
            check_factor(*n, input, &reply);
        }
        let snap = service.shutdown();
        assert_eq!(snap.requests, 40);
        assert_eq!(snap.replies_ok, 40);
        assert_eq!(snap.rejected, 0);
        assert!(snap.batches >= 4, "four (n, dtype) groups at minimum");
    }

    #[test]
    fn non_spd_failure_routes_to_exactly_the_bad_request() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(2),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let n = 16;
        // One poisoned request sandwiched between good neighbors that land
        // in the same (n, dtype) batch.
        let receivers: Vec<_> = (0..20u64)
            .map(|i| {
                let payload = if i == 7 {
                    neg_identity(n)
                } else {
                    spd_payload(n, 2000 + i)
                };
                client.submit(i, n, payload)
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(reply.id, i as u64);
            if i == 7 {
                assert_eq!(reply.outcome, Outcome::NotSpd { column: 0 });
            } else {
                assert!(reply.outcome.is_ok(), "req {i}: {:?}", reply.outcome);
            }
        }
        let snap = service.shutdown();
        assert_eq!(snap.replies_failed, 1);
        assert_eq!(snap.replies_ok, 19);
    }

    #[test]
    fn admission_control_rejects_malformed_and_oversize_requests() {
        let service = Service::start(ServiceConfig::default(), EngineSelector::heuristic());
        let client = service.client();
        let r = client.call(1, 0, Payload::F32(vec![]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadDimension));
        let r = client.call(2, 65, Payload::F32(vec![0.0; 65 * 65]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadDimension));
        let r = client.call(3, 8, Payload::F32(vec![0.0; 63]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadPayload));
        let snap = service.shutdown();
        assert_eq!(snap.rejected, 3);
        assert_eq!(snap.requests, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_rejected_closed() {
        let service = Service::start(ServiceConfig::default(), EngineSelector::heuristic());
        let client = service.client();
        let reply = client.call(1, 8, spd_payload(8, 42));
        assert!(reply.outcome.is_ok());
        service.shutdown();
        let reply = client.call(2, 8, spd_payload(8, 43));
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::Closed));
        let rx = client.submit(3, 8, spd_payload(8, 44));
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::Closed));
    }

    #[test]
    fn f64_requests_are_served() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let n = 12;
        let a = spd_vec::<f64>(n, 99);
        let reply = client.call(5, n, Payload::F64(a.clone()));
        let Outcome::Factor(Payload::F64(l)) = &reply.outcome else {
            panic!("expected f64 factor, got {:?}", reply.outcome);
        };
        for col in 0..n {
            let mut sum = 0.0;
            for k in 0..=col {
                sum += l[k * n + col] * l[k * n + col];
            }
            assert!((sum - a[col * n + col]).abs() < 1e-9 * a[col * n + col].max(1.0));
        }
        service.shutdown();
    }
}
