//! The service: ingest queue → batch former → tuned-engine worker pool,
//! with an in-process [`Client`] handle.
//!
//! Thread shape: one former thread owns the consumer side of the
//! [`IngestQueue`]; `workers` supervisor threads each own one live
//! worker thread sharing a `sync_channel` of [`FormedBatch`]es. Each
//! worker factorizes its batch in place with
//! [`factorize_batch_auto_backend`] under the plan the [`EngineSelector`]
//! chose (including its lane backend: runtime-dispatched SIMD by
//! default), then routes every per-matrix outcome — factor or non-SPD
//! failure — back to exactly the originating request's sink.
//!
//! Workers are *supervised*: a batch executes under `catch_unwind`, so a
//! panic (a kernel bug, or one injected by the chaos harness) costs only
//! that batch — its requests get a typed [`Outcome::WorkerCrashed`]
//! reply, the crashed worker thread is restarted with capped exponential
//! backoff, and the process never exits. Combined with deadline shedding
//! in the former, every admitted request receives exactly one reply no
//! matter what faults fire.
//!
//! **Large matrices don't batch — they schedule.** A matrix above the
//! batch ceiling has no cohort to amortize with (one `n = 512` matrix is
//! ~4000 `n = 8` matrices of work) and would stall every small request
//! packed behind it. [`Client::submit_large_sink`] therefore bypasses
//! the former entirely: the request goes to a dedicated, equally
//! supervised worker pool that factorizes the payload **in place** with
//! the task-graph runtime ([`potrf_tiled`]) — no gather, no packing; the
//! reply reuses the request's own buffer. Failure routing is per
//! request: a non-SPD pivot tile reports the failing *global* column
//! (deterministic even under parallel DAG execution, because diagonal
//! factorizations are totally ordered), a panic mid-DAG fails only that
//! request, and an expired deadline is shed before the factorization
//! starts.

use crate::codec::{factor_ok_frame_f32, factor_ok_frame_f64};
use crate::engine::EngineSelector;
use crate::fault::{silence_injected_panics, FaultAction, FaultHook, FaultSite};
use crate::former::{run_former, FormedBatch, FormerConfig, IngestMode, PackedData};
use crate::queue::{IngestQueue, PushRefused};
use crate::request::{FactorReply, Outcome, Payload, Pending, RejectReason, ReplySink};
use crate::stats::{ServiceStats, StatsSnapshot};
use ibcf_core::lane_batch::factorize_batch_auto_backend;
use ibcf_core::{potrf_tiled, CholeskyError, Looking, Real};
use ibcf_layout::{gather_matrix_affine, Layout};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing formed batches.
    pub workers: usize,
    /// Ingest queue capacity (admission-control bound).
    pub queue_cap: usize,
    /// Batch former size threshold.
    pub max_batch: usize,
    /// Batch former deadline.
    pub max_delay: Duration,
    /// Largest admissible matrix dimension.
    pub max_n: usize,
    /// Fault injection hook ([`FaultHook::disabled`] in production: one
    /// `None` check per site, no other cost).
    pub fault: FaultHook,
    /// How the former packs flushed groups ([`IngestMode::Fused`] by
    /// default; [`IngestMode::Staged`] keeps the legacy extra-copy path
    /// alive for A/B comparison).
    pub ingest: IngestMode,
    /// Largest admissible dimension for a *large* (task-graph) request.
    /// Kept comfortably under the wire's `MAX_FRAME` so a factored f64
    /// reply still frames.
    pub max_large_n: usize,
    /// Worker threads serving large requests (each runs one task-graph
    /// factorization at a time, itself parallel over the DAG).
    pub large_workers: usize,
    /// Tile edge for the large path's task-graph runtime.
    pub large_nb: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_cap: 8192,
            max_batch: 1024,
            max_delay: Duration::from_millis(1),
            max_n: 64,
            fault: FaultHook::disabled(),
            ingest: IngestMode::Fused,
            max_large_n: 1024,
            large_workers: 1,
            large_nb: 32,
        }
    }
}

/// Queued-but-unserved bound for the large path: large payloads are big,
/// so admission control trips early instead of buffering a deep backlog
/// of megabyte buffers.
const LARGE_QUEUE_CAP: usize = 64;

/// First supervisor backoff after a worker crash; doubles per
/// consecutive crash.
const RESTART_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Supervisor backoff ceiling.
const RESTART_BACKOFF_CAP: Duration = Duration::from_millis(250);

struct Inner {
    queue: Arc<IngestQueue>,
    stats: Arc<ServiceStats>,
    max_n: usize,
    max_large_n: usize,
    tuned: bool,
    /// Sender side of the large-request channel; `None` once a drain or
    /// shutdown began (dropping it lets the large workers drain out).
    large_tx: Mutex<Option<SyncSender<Pending>>>,
}

/// A running factorization service. Dropping without
/// [`Service::shutdown`] detaches the threads; shut down for a clean
/// exit.
pub struct Service {
    inner: Arc<Inner>,
    former: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    large_workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the former and worker threads.
    pub fn start(config: ServiceConfig, selector: EngineSelector) -> Service {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        if config.fault.is_enabled() {
            silence_injected_panics();
        }
        assert!(config.large_workers > 0, "need at least one large worker");
        assert!(config.large_nb > 0, "large_nb must be positive");
        let queue = Arc::new(IngestQueue::new(config.queue_cap));
        let stats = Arc::new(ServiceStats::default());
        let (large_tx, large_rx) = sync_channel::<Pending>(LARGE_QUEUE_CAP);
        let inner = Arc::new(Inner {
            queue: queue.clone(),
            stats: stats.clone(),
            max_n: config.max_n,
            max_large_n: config.max_large_n,
            tuned: selector.is_tuned(),
            large_tx: Mutex::new(Some(large_tx)),
        });
        // Shallow channel: the former should stall (and keep accumulating
        // arrivals into bigger batches) when workers are saturated, not
        // buffer an unbounded backlog of packed buffers.
        let (batch_tx, batch_rx) = sync_channel::<FormedBatch>(2 * config.workers);
        let former_cfg = FormerConfig {
            max_batch: config.max_batch,
            max_delay: config.max_delay,
            ingest: config.ingest,
            ..FormerConfig::default()
        };
        let former = {
            let (q, s, h) = (queue, stats.clone(), config.fault.clone());
            std::thread::Builder::new()
                .name("ibcf-former".into())
                .spawn(move || run_former(q, selector, former_cfg, s, batch_tx, h))
                .expect("spawn former")
        };
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let workers = (0..config.workers)
            .map(|w| {
                let (rx, s, h) = (batch_rx.clone(), stats.clone(), config.fault.clone());
                std::thread::Builder::new()
                    .name(format!("ibcf-supervisor-{w}"))
                    .spawn(move || run_supervisor(w, &rx, &s, &h))
                    .expect("spawn supervisor")
            })
            .collect();
        let large_rx = Arc::new(Mutex::new(large_rx));
        let large_workers = (0..config.large_workers)
            .map(|w| {
                let (rx, s, h) = (large_rx.clone(), stats.clone(), config.fault.clone());
                let nb = config.large_nb;
                std::thread::Builder::new()
                    .name(format!("ibcf-large-supervisor-{w}"))
                    .spawn(move || run_large_supervisor(w, &rx, &s, &h, nb))
                    .expect("spawn large supervisor")
            })
            .collect();
        Service {
            inner,
            former: Some(former),
            workers,
            large_workers,
        }
    }

    /// A submission handle. Clients stay valid until shutdown; submissions
    /// after shutdown are rejected with [`RejectReason::ShuttingDown`].
    pub fn client(&self) -> Client {
        Client {
            inner: self.inner.clone(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Closes the queue, drains everything already admitted, and joins
    /// all threads. Every admitted request receives its reply before this
    /// returns.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.inner.queue.close();
        // Dropping the large sender lets the large workers drain their
        // channel and exit, mirroring the former dropping the batch
        // sender below.
        self.inner.large_tx.lock().unwrap().take();
        if let Some(former) = self.former.take() {
            former.join().expect("former panicked");
        }
        // The former dropped the batch sender; workers drain and exit,
        // and each supervisor follows its drained worker out.
        for w in self.workers.drain(..) {
            w.join().expect("supervisor panicked");
        }
        for w in self.large_workers.drain(..) {
            w.join().expect("large supervisor panicked");
        }
        self.inner.stats.snapshot()
    }
}

/// Why a worker thread returned.
enum WorkerExit {
    /// The batch channel disconnected and drained: clean shutdown.
    Drained,
    /// A batch panicked (caught); `processed` batches completed before
    /// the crash — the supervisor resets its backoff when that is > 0.
    Crashed { processed: u64 },
}

/// Supervises one worker slot: spawns the worker thread, joins it, and
/// respawns after a crash with capped exponential backoff. Backoff
/// resets whenever the crashed incarnation made progress first, so a
/// poisoned workload can't permanently slow a healthy worker, while a
/// crash loop (instant repeated panics) backs off instead of spinning.
fn run_supervisor(
    slot: usize,
    rx: &Arc<Mutex<Receiver<FormedBatch>>>,
    stats: &Arc<ServiceStats>,
    hook: &FaultHook,
) {
    let mut backoff = RESTART_BACKOFF_BASE;
    let mut incarnation = 0u64;
    loop {
        let (rx2, s2, h2) = (rx.clone(), stats.clone(), hook.clone());
        let worker = std::thread::Builder::new()
            .name(format!("ibcf-worker-{slot}.{incarnation}"))
            .spawn(move || run_worker(&rx2, &s2, &h2))
            .expect("spawn worker");
        match worker.join().expect("worker escaped catch_unwind") {
            WorkerExit::Drained => return,
            WorkerExit::Crashed { processed } => {
                stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                if processed > 0 {
                    backoff = RESTART_BACKOFF_BASE;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(RESTART_BACKOFF_CAP);
                incarnation += 1;
            }
        }
    }
}

/// Factorizes formed batches in place and distributes replies, until the
/// channel drains (clean exit) or a batch panics (supervised exit).
fn run_worker(
    rx: &Mutex<Receiver<FormedBatch>>,
    stats: &ServiceStats,
    hook: &FaultHook,
) -> WorkerExit {
    let mut processed = 0u64;
    // Worker-lifetime gather scratch: reused across every batch this
    // incarnation executes, so the TCP fast path in `execute_batch`
    // allocates nothing per reply beyond the frame bytes themselves.
    let mut scratch = GatherScratch::default();
    loop {
        let batch = {
            let guard = rx.lock().unwrap();
            match guard.recv() {
                Ok(b) => b,
                Err(_) => return WorkerExit::Drained, // former gone, drained
            }
        };
        match execute_batch(batch, stats, hook, &mut scratch) {
            Ok(()) => processed += 1,
            Err(()) => return WorkerExit::Crashed { processed },
        }
    }
}

/// Supervises one large-path worker slot — same restart-with-backoff
/// contract as [`run_supervisor`], sharing the restart counters.
fn run_large_supervisor(
    slot: usize,
    rx: &Arc<Mutex<Receiver<Pending>>>,
    stats: &Arc<ServiceStats>,
    hook: &FaultHook,
    nb: usize,
) {
    let mut backoff = RESTART_BACKOFF_BASE;
    let mut incarnation = 0u64;
    loop {
        let (rx2, s2, h2) = (rx.clone(), stats.clone(), hook.clone());
        let worker = std::thread::Builder::new()
            .name(format!("ibcf-large-worker-{slot}.{incarnation}"))
            .spawn(move || run_large_worker(&rx2, &s2, &h2, nb))
            .expect("spawn large worker");
        match worker.join().expect("large worker escaped catch_unwind") {
            WorkerExit::Drained => return,
            WorkerExit::Crashed { processed } => {
                stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                if processed > 0 {
                    backoff = RESTART_BACKOFF_BASE;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(RESTART_BACKOFF_CAP);
                incarnation += 1;
            }
        }
    }
}

/// Serves large requests one at a time until the channel drains (sender
/// dropped at drain/shutdown) or a factorization panics (supervised
/// exit — the panic fails only the request that triggered it).
fn run_large_worker(
    rx: &Mutex<Receiver<Pending>>,
    stats: &ServiceStats,
    hook: &FaultHook,
    nb: usize,
) -> WorkerExit {
    let mut processed = 0u64;
    loop {
        let pending = {
            let guard = rx.lock().unwrap();
            match guard.recv() {
                Ok(p) => p,
                Err(_) => return WorkerExit::Drained,
            }
        };
        match execute_large(pending, stats, hook, nb) {
            Ok(()) => processed += 1,
            Err(()) => return WorkerExit::Crashed { processed },
        }
    }
}

/// Runs one large request through the task-graph runtime, **in place** in
/// the request's own payload buffer (lower triangle becomes `L`, strict
/// upper stays the submitted data — the `potrf` convention the batched
/// path also honors). Deadline shedding happens here, after dequeue:
/// queue wait is exactly the time that can expire a large request.
/// A panic is caught and fails only this request with a typed
/// [`Outcome::WorkerCrashed`]; `Err` restarts the worker.
fn execute_large(p: Pending, stats: &ServiceStats, hook: &FaultHook, nb: usize) -> Result<(), ()> {
    let Pending {
        id,
        n,
        payload,
        enqueued,
        deadline,
        sink,
    } = p;
    if deadline.is_some_and(|d| Instant::now() >= d) {
        sink.send(FactorReply {
            id,
            outcome: Outcome::Rejected(RejectReason::DeadlineExceeded),
        });
        // Same ledger as the former's shed path: `drained()` counts
        // `deadline_expired` as answered.
        stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        stats.rejected.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }
    let mut inject_panic = false;
    match hook.check(FaultSite::WorkerBatch) {
        Some(FaultAction::PanicWorker) => inject_panic = true,
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        _ => {}
    }
    // Only the payload crosses the unwind boundary; the sink stays out
    // here so a panic still routes back to the originator.
    let factored = catch_unwind(AssertUnwindSafe(move || {
        if inject_panic {
            panic!("{} (chaos harness)", crate::fault::INJECTED_PANIC_MARKER);
        }
        match payload {
            Payload::F32(mut v) => {
                let r = potrf_tiled(n, &mut v, n, nb, Looking::Right);
                (Payload::F32(v), r)
            }
            Payload::F64(mut v) => {
                let r = potrf_tiled(n, &mut v, n, nb, Looking::Right);
                (Payload::F64(v), r)
            }
        }
    }));
    let (crashed, outcome) = match factored {
        Ok((payload, Ok(()))) => (false, Outcome::Factor(payload)),
        Ok((_, Err(CholeskyError::NotPositiveDefinite { column }))) => {
            (false, Outcome::NotSpd { column })
        }
        Ok((_, Err(CholeskyError::NonFinite { column }))) => (false, Outcome::NonFinite { column }),
        Err(_) => {
            stats.worker_crashes.fetch_add(1, Ordering::Relaxed);
            (true, Outcome::WorkerCrashed)
        }
    };
    let ok = outcome.is_ok();
    let latency = enqueued.elapsed();
    sink.send(FactorReply { id, outcome });
    // Counters bump *after* delivery so `drained()` implies every reply
    // already left through its sink.
    stats.record_latency(latency);
    if ok {
        stats.replies_ok.fetch_add(1, Ordering::Relaxed);
        stats.large_ok.fetch_add(1, Ordering::Relaxed);
    } else {
        stats.replies_failed.fetch_add(1, Ordering::Relaxed);
        stats.large_failed.fetch_add(1, Ordering::Relaxed);
    }
    if crashed {
        Err(())
    } else {
        Ok(())
    }
}

/// Per-worker gather scratch: one reusable full-square staging buffer
/// per precision, living as long as the worker incarnation. The TCP
/// fast path in [`execute_batch`] gathers each factored matrix into this
/// scratch and encodes the reply frame straight from it, so serving a
/// reply costs one exactly-sized frame allocation instead of a zeroed
/// payload `Vec` *plus* a frame.
#[derive(Default)]
struct GatherScratch {
    f32: Vec<f32>,
    f64: Vec<f64>,
}

/// Runs one batch. A panic inside the factorization (or one injected by
/// the chaos hook) is caught here: every request in the batch gets a
/// typed [`Outcome::WorkerCrashed`] reply — never silence, never a
/// process abort — and `Err` tells the worker loop to die and be
/// restarted by its supervisor.
fn execute_batch(
    batch: FormedBatch,
    stats: &ServiceStats,
    hook: &FaultHook,
    scratch: &mut GatherScratch,
) -> Result<(), ()> {
    let FormedBatch {
        n,
        plan,
        layout,
        mut data,
        reqs,
        ..
    } = batch;
    let mut inject_panic = false;
    match hook.check(FaultSite::WorkerBatch) {
        Some(FaultAction::PanicWorker) => inject_panic = true,
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        _ => {}
    }
    // The requests (and their reply sinks) stay *outside* the unwind
    // scope: only the packed buffer and the factorization cross it, so a
    // panic can still be routed back to every originator.
    let factored = catch_unwind(AssertUnwindSafe(move || {
        if inject_panic {
            panic!("{} (chaos harness)", crate::fault::INJECTED_PANIC_MARKER);
        }
        let failures = match &mut data {
            PackedData::F32(buf) => {
                factorize_batch_auto_backend(
                    &layout,
                    buf.as_mut_slice(),
                    plan.order,
                    plan.width,
                    plan.backend,
                )
                .failures
            }
            PackedData::F64(buf) => {
                factorize_batch_auto_backend(
                    &layout,
                    buf.as_mut_slice(),
                    plan.order,
                    plan.width,
                    plan.backend,
                )
                .failures
            }
        };
        (data, failures)
    }));
    let (data, failures) = match factored {
        Ok(pair) => pair,
        Err(_) => {
            stats.worker_crashes.fetch_add(1, Ordering::Relaxed);
            for req in reqs {
                let latency = req.enqueued.elapsed();
                req.sink.send(FactorReply {
                    id: req.id,
                    outcome: Outcome::WorkerCrashed,
                });
                // Counters bump *after* delivery so `drained()` implies
                // every reply already left through its sink.
                stats.record_latency(latency);
                stats.replies_failed.fetch_add(1, Ordering::Relaxed);
            }
            return Err(());
        }
    };
    // `failures` is sorted by matrix index; walk it alongside the
    // requests so each failure lands on exactly its originator.
    let mut fail_iter = failures.into_iter().peekable();
    for (mat, req) in reqs.into_iter().enumerate() {
        let failure = match fail_iter.peek() {
            Some(&(idx, _)) if idx == mat => fail_iter.next().map(|(_, e)| e),
            _ => None,
        };
        let Pending {
            id, enqueued, sink, ..
        } = req;
        let latency = enqueued.elapsed();
        let ok = failure.is_none();
        match failure {
            Some(CholeskyError::NotPositiveDefinite { column }) => sink.send(FactorReply {
                id,
                outcome: Outcome::NotSpd { column },
            }),
            Some(CholeskyError::NonFinite { column }) => sink.send(FactorReply {
                id,
                outcome: Outcome::NonFinite { column },
            }),
            // Success: a frame sink gets its reply encoded straight from
            // the worker's reusable gather scratch — no per-reply payload
            // allocation, no zero-fill, just the frame bytes. Everything
            // else receives an owned Payload (that ownership *is* the
            // in-process reply contract).
            None => match sink {
                ReplySink::Frame { tx, dtype } => {
                    debug_assert_eq!(
                        dtype.elem_bytes(),
                        match &data {
                            PackedData::F32(_) => 4,
                            PackedData::F64(_) => 8,
                        },
                        "frame sink dtype disagrees with its batch"
                    );
                    let frame = match &data {
                        PackedData::F32(v) => {
                            scratch.f32.resize(n * n, 0.0);
                            gather_matrix_affine(&layout, v.as_slice(), mat, &mut scratch.f32, n);
                            factor_ok_frame_f32(id, &scratch.f32[..n * n])
                        }
                        PackedData::F64(v) => {
                            scratch.f64.resize(n * n, 0.0);
                            gather_matrix_affine(&layout, v.as_slice(), mat, &mut scratch.f64, n);
                            factor_ok_frame_f64(id, &scratch.f64[..n * n])
                        }
                    };
                    // Send failure = connection gone; drop with it.
                    let _ = tx.send(frame);
                }
                other => other.send(FactorReply {
                    id,
                    outcome: Outcome::Factor(gather_payload(&layout, &data, mat, n)),
                }),
            },
        }
        // Counters bump *after* delivery so `drained()` implies every
        // reply already left through its sink.
        stats.record_latency(latency);
        if ok {
            stats.replies_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.replies_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Any remaining failure would sit in a padding slot — impossible,
    // padding is the identity matrix.
    debug_assert!(
        fail_iter.peek().is_none(),
        "failure reported for an identity padding slot"
    );
    Ok(())
}

fn gather_payload(layout: &Layout, data: &PackedData, mat: usize, n: usize) -> Payload {
    fn full_square<T: Real>(layout: &Layout, data: &[T], mat: usize, n: usize) -> Vec<T> {
        let mut out = vec![T::ZERO; n * n];
        gather_matrix_affine(layout, data, mat, &mut out, n);
        out
    }
    match data {
        PackedData::F32(v) => Payload::F32(full_square(layout, v.as_slice(), mat, n)),
        PackedData::F64(v) => Payload::F64(full_square(layout, v.as_slice(), mat, n)),
    }
}

/// An in-process submission handle (cheap to clone, `Send`).
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// `true` if the service was started from a tuned dispatch table.
    pub fn is_tuned(&self) -> bool {
        self.inner.tuned
    }

    /// Current counters (serves the `stats` request).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Largest admissible `n` for batched requests.
    pub fn max_n(&self) -> usize {
        self.inner.max_n
    }

    /// Largest admissible `n` for large (task-graph) requests.
    pub fn max_large_n(&self) -> usize {
        self.inner.max_large_n
    }

    /// Stops admission (new submissions are rejected with
    /// [`RejectReason::ShuttingDown`]) while everything already admitted
    /// keeps flowing to workers. Poll [`Client::drained`] to learn when
    /// every admitted request has been answered.
    pub fn begin_drain(&self) {
        self.inner.queue.close();
        // Large admission stops with it; dropping the sender drains the
        // large workers once their channel empties.
        self.inner.large_tx.lock().unwrap().take();
    }

    /// `true` once every admitted request has received its reply. Only
    /// meaningful after [`Client::begin_drain`] (or shutdown) stopped
    /// admission; before that, in-flight arrivals can flip it back.
    pub fn drained(&self) -> bool {
        let s = &self.inner.stats;
        let answered = s.replies_ok.load(Ordering::Relaxed)
            + s.replies_failed.load(Ordering::Relaxed)
            + s.deadline_expired.load(Ordering::Relaxed);
        answered >= s.requests.load(Ordering::Relaxed)
    }

    /// Requests queued but not yet drained into a batch — the router's
    /// least-loaded signal.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// `true` while the ingest queue still admits new work; flips false
    /// once a drain or shutdown began. The router's health probe.
    pub fn is_accepting(&self) -> bool {
        !self.inner.queue.is_closed()
    }

    /// Non-blocking admission that hands everything back on refusal:
    /// like `submit_sink(.., blocking = false)` but instead of rejecting
    /// through the sink, a refusal returns `(reason, payload, sink)` to
    /// the caller — nothing was delivered, nothing was counted — so a
    /// router can re-route the request to another shard or translate a
    /// full queue into a typed backpressure reject. On `Ok` the request
    /// was admitted and the sink will be invoked exactly once by the
    /// service.
    #[allow(clippy::type_complexity)]
    pub fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), (RejectReason, Payload, ReplySink)> {
        if n == 0 || n > self.inner.max_n {
            return Err((RejectReason::BadDimension, payload, sink));
        }
        if payload.len() != n * n {
            return Err((RejectReason::BadPayload, payload, sink));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err((RejectReason::DeadlineExceeded, payload, sink));
        }
        let pending = Pending {
            id,
            n,
            payload,
            enqueued: Instant::now(),
            deadline,
            sink,
        };
        match self.inner.queue.try_push(pending) {
            Ok(()) => {
                self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err((p, closed)) => {
                let reason = if closed {
                    RejectReason::ShuttingDown
                } else {
                    RejectReason::QueueFull
                };
                Err((reason, p.payload, p.sink))
            }
        }
    }

    /// Submits a request, delivering the reply through `sink`. With
    /// `blocking` the call waits for queue space (backpressure);
    /// otherwise a full queue rejects immediately (admission control).
    /// A `deadline` propagates to the former: if it expires before the
    /// request is packed into a batch, the request is shed with
    /// [`RejectReason::DeadlineExceeded`]. The sink is always invoked
    /// exactly once, inline for rejections.
    pub fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        blocking: bool,
    ) {
        let reject = |sink: ReplySink, reason: RejectReason, stats: &ServiceStats| {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            sink.send(FactorReply {
                id,
                outcome: Outcome::Rejected(reason),
            });
        };
        if n == 0 || n > self.inner.max_n {
            return reject(sink, RejectReason::BadDimension, &self.inner.stats);
        }
        if payload.len() != n * n {
            return reject(sink, RejectReason::BadPayload, &self.inner.stats);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // Dead on arrival: refuse at the door rather than admitting
            // work the former would immediately shed.
            return reject(sink, RejectReason::DeadlineExceeded, &self.inner.stats);
        }
        let pending = Pending {
            id,
            n,
            payload,
            enqueued: Instant::now(),
            deadline,
            sink,
        };
        let outcome = if blocking {
            self.inner.queue.push_wait(pending).map_err(|e| match e {
                PushRefused::ShuttingDown(p) => (p, RejectReason::ShuttingDown),
                PushRefused::DeadlineExceeded(p) => (p, RejectReason::DeadlineExceeded),
            })
        } else {
            self.inner.queue.try_push(pending).map_err(|(p, closed)| {
                let reason = if closed {
                    RejectReason::ShuttingDown
                } else {
                    RejectReason::QueueFull
                };
                (p, reason)
            })
        };
        match outcome {
            Ok(()) => {
                self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
            }
            Err((p, reason)) => reject(p.sink, reason, &self.inner.stats),
        }
    }

    /// Non-blocking *large* admission that hands everything back on
    /// refusal — the task-graph twin of [`Client::try_submit`], and what
    /// a router shard delegates to. `Ok` means the request was admitted
    /// to the large queue and the sink will be invoked exactly once.
    #[allow(clippy::type_complexity)]
    pub fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), (RejectReason, Payload, ReplySink)> {
        if n == 0 || n > self.inner.max_large_n {
            return Err((RejectReason::BadDimension, payload, sink));
        }
        if payload.len() != n * n {
            return Err((RejectReason::BadPayload, payload, sink));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err((RejectReason::DeadlineExceeded, payload, sink));
        }
        let pending = Pending {
            id,
            n,
            payload,
            enqueued: Instant::now(),
            deadline,
            sink,
        };
        // Clone the sender out of the lock so a slow try_send never
        // holds up drain.
        let tx = self.inner.large_tx.lock().unwrap().clone();
        let refused = match tx {
            None => Err((pending, RejectReason::ShuttingDown)),
            Some(tx) => tx.try_send(pending).map_err(|e| match e {
                std::sync::mpsc::TrySendError::Full(p) => (p, RejectReason::QueueFull),
                std::sync::mpsc::TrySendError::Disconnected(p) => (p, RejectReason::ShuttingDown),
            }),
        };
        match refused {
            Ok(()) => {
                self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .stats
                    .large_requests
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err((p, reason)) => Err((reason, p.payload, p.sink)),
        }
    }

    /// Submits a *large* request: the former is bypassed and the payload
    /// is scheduled on the task-graph worker pool, which factorizes it
    /// in place (large matrices don't batch — they schedule). Admission
    /// is always non-blocking: a full large queue rejects with
    /// [`RejectReason::QueueFull`]. The sink is invoked exactly once,
    /// inline for rejections; a deadline that expires while queued sheds
    /// the request before any factorization work starts.
    pub fn submit_large_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        if let Err((reason, _payload, sink)) = self.try_submit_large(id, n, payload, deadline, sink)
        {
            self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            sink.send(FactorReply {
                id,
                outcome: Outcome::Rejected(reason),
            });
        }
    }

    /// Submits a large request and waits for the reply.
    pub fn call_large(&self, id: u64, n: usize, payload: Payload) -> FactorReply {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_large_sink(id, n, payload, None, ReplySink::channel(tx));
        rx.recv().expect("reply sink dropped without reply")
    }

    /// Submits and returns a receiver for the reply (non-blocking
    /// admission, no deadline).
    pub fn submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
    ) -> std::sync::mpsc::Receiver<FactorReply> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_sink(id, n, payload, None, ReplySink::channel(tx), false);
        rx
    }

    /// Submits with backpressure and waits for the reply.
    pub fn call(&self, id: u64, n: usize, payload: Payload) -> FactorReply {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_sink(id, n, payload, None, ReplySink::channel(tx), true);
        rx.recv().expect("reply sink dropped without reply")
    }
}

/// What the TCP front-end needs from whatever answers requests: one
/// service's [`Client`], or a [`RouterClient`](crate::router::RouterClient)
/// fronting a whole fleet. The contract is the service one — `submit_sink`
/// invokes its sink exactly once (inline for rejections), and once
/// `begin_drain` stopped admission, `drained` eventually turns (and
/// stays) true.
pub trait Frontend: Clone + Send + 'static {
    /// Submits one request; the reply arrives through `sink` exactly
    /// once. Implementations may ignore `blocking` (the router never
    /// blocks — it sheds with a typed backpressure reject instead).
    fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        blocking: bool,
    );
    /// Submits one *large* (task-graph) request; same exactly-once sink
    /// contract. Admission is always non-blocking.
    fn submit_large_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    );
    /// Current counters, for the stats frame.
    fn stats(&self) -> StatsSnapshot;
    /// Stops admission; already-admitted work keeps draining.
    fn begin_drain(&self);
    /// `true` once every admitted request has been answered.
    fn drained(&self) -> bool;
}

impl Frontend for Client {
    fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        blocking: bool,
    ) {
        Client::submit_sink(self, id, n, payload, deadline, sink, blocking);
    }

    fn submit_large_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) {
        Client::submit_large_sink(self, id, n, payload, deadline, sink);
    }

    fn stats(&self) -> StatsSnapshot {
        Client::stats(self)
    }

    fn begin_drain(&self) {
        Client::begin_drain(self);
    }

    fn drained(&self) -> bool {
        Client::drained(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_core::spd::{random_spd, SpdKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd_vec<T: Real>(n: usize, seed: u64) -> Vec<T> {
        let mut rng = StdRng::seed_from_u64(seed);
        random_spd::<T>(n, SpdKind::Wishart, &mut rng).into_vec()
    }

    fn spd_payload(n: usize, seed: u64) -> Payload {
        Payload::F32(spd_vec(n, seed))
    }

    fn neg_identity(n: usize) -> Payload {
        let mut m = vec![0.0f32; n * n];
        for d in 0..n {
            m[d * n + d] = -1.0;
        }
        Payload::F32(m)
    }

    fn check_factor(n: usize, input: &Payload, reply: &FactorReply) {
        let Outcome::Factor(Payload::F32(out)) = &reply.outcome else {
            panic!("expected a factor, got {:?}", reply.outcome);
        };
        let Payload::F32(a) = input else {
            unreachable!()
        };
        // L·Lᵀ ≈ A on the lower triangle.
        for col in 0..n {
            for row in col..n {
                let mut sum = 0.0f64;
                for k in 0..=col.min(row) {
                    sum += out[k * n + row] as f64 * out[k * n + col] as f64;
                }
                let want = a[col * n + row] as f64;
                assert!(
                    (sum - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "n={n} ({row},{col}): {sum} vs {want}"
                );
            }
        }
        // Strict upper triangle is the input, untouched.
        for col in 1..n {
            for row in 0..col {
                assert_eq!(out[col * n + row], a[col * n + row]);
            }
        }
    }

    #[test]
    fn end_to_end_factorization_round_trip() {
        let service = Service::start(
            ServiceConfig {
                workers: 2,
                max_delay: Duration::from_millis(2),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let inputs: Vec<(u64, usize, Payload)> = (0..40)
            .map(|i| {
                let n = [3, 8, 16, 17][i as usize % 4];
                (i, n, spd_payload(n, 1000 + i))
            })
            .collect();
        let receivers: Vec<_> = inputs
            .iter()
            .map(|(id, n, p)| client.submit(*id, *n, p.clone()))
            .collect();
        for ((id, n, input), rx) in inputs.iter().zip(receivers) {
            let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(reply.id, *id);
            check_factor(*n, input, &reply);
        }
        let snap = service.shutdown();
        assert_eq!(snap.requests, 40);
        assert_eq!(snap.replies_ok, 40);
        assert_eq!(snap.rejected, 0);
        assert!(snap.batches >= 4, "four (n, dtype) groups at minimum");
    }

    #[test]
    fn non_spd_failure_routes_to_exactly_the_bad_request() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(2),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let n = 16;
        // One poisoned request sandwiched between good neighbors that land
        // in the same (n, dtype) batch.
        let receivers: Vec<_> = (0..20u64)
            .map(|i| {
                let payload = if i == 7 {
                    neg_identity(n)
                } else {
                    spd_payload(n, 2000 + i)
                };
                client.submit(i, n, payload)
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(reply.id, i as u64);
            if i == 7 {
                assert_eq!(reply.outcome, Outcome::NotSpd { column: 0 });
            } else {
                assert!(reply.outcome.is_ok(), "req {i}: {:?}", reply.outcome);
            }
        }
        let snap = service.shutdown();
        assert_eq!(snap.replies_failed, 1);
        assert_eq!(snap.replies_ok, 19);
    }

    #[test]
    fn admission_control_rejects_malformed_and_oversize_requests() {
        let service = Service::start(ServiceConfig::default(), EngineSelector::heuristic());
        let client = service.client();
        let r = client.call(1, 0, Payload::F32(vec![]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadDimension));
        let r = client.call(2, 65, Payload::F32(vec![0.0; 65 * 65]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadDimension));
        let r = client.call(3, 8, Payload::F32(vec![0.0; 63]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadPayload));
        let snap = service.shutdown();
        assert_eq!(snap.rejected, 3);
        assert_eq!(snap.requests, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_rejected_shutting_down() {
        let service = Service::start(ServiceConfig::default(), EngineSelector::heuristic());
        let client = service.client();
        let reply = client.call(1, 8, spd_payload(8, 42));
        assert!(reply.outcome.is_ok());
        service.shutdown();
        let reply = client.call(2, 8, spd_payload(8, 43));
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
        let rx = client.submit(3, 8, spd_payload(8, 44));
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
    }

    #[test]
    fn worker_panics_are_contained_typed_and_survived() {
        use crate::fault::FaultPlan;
        // A panic plan that fires every few batches: many batches must
        // crash, every crashed batch's requests must get a typed
        // WorkerCrashed reply, and the service must keep serving.
        let hook = FaultHook::from_plan(FaultPlan::worker_panic(0xC0FFEE));
        let service = Service::start(
            ServiceConfig {
                workers: 2,
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                fault: hook.clone(),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let total = 96u64;
        let receivers: Vec<_> = (0..total)
            .map(|i| client.submit(i, 8, spd_payload(8, 5000 + i)))
            .collect();
        let mut ok = 0u64;
        let mut crashed = 0u64;
        for (i, rx) in receivers.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(20)).unwrap();
            assert_eq!(reply.id, i as u64, "replies route to their originator");
            match reply.outcome {
                Outcome::Factor(_) => ok += 1,
                Outcome::WorkerCrashed => crashed += 1,
                other => panic!("req {i}: unexpected outcome {other:?}"),
            }
        }
        let snap = service.shutdown();
        assert_eq!(ok + crashed, total, "exactly one reply per request");
        assert!(
            snap.worker_crashes >= 3,
            "plan should fire repeatedly, got {} crashes",
            snap.worker_crashes
        );
        // Crashes count per batch, crashed replies per request: every
        // crashed batch holds between 1 and `max_batch` requests.
        assert!(
            crashed >= snap.worker_crashes,
            "every crash answered someone"
        );
        assert!(
            crashed <= snap.worker_crashes * 4,
            "crashed replies bounded by batch size"
        );
        assert_eq!(snap.worker_restarts, snap.worker_crashes);
        assert_eq!(snap.replies_ok, ok);
        assert!(hook.injected() >= 3);
    }

    #[test]
    fn queue_stall_faults_delay_but_never_lose_requests() {
        use crate::fault::FaultPlan;
        let hook = FaultHook::from_plan(FaultPlan::queue_stall(7));
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                fault: hook.clone(),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        // Trickle requests in so the former's drain loop actually
        // iterates enough times to reach the plan's clock residue.
        let receivers: Vec<_> = (0..50u64)
            .map(|i| {
                if i % 2 == 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                client.submit(i, 8, spd_payload(8, 7000 + i))
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(20)).unwrap();
            assert!(reply.outcome.is_ok(), "req {i}: {:?}", reply.outcome);
        }
        let snap = service.shutdown();
        assert_eq!(snap.replies_ok, 50);
        assert!(hook.injected() > 0, "the stall plan must actually fire");
    }

    #[test]
    fn expired_deadline_requests_get_typed_replies() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        // Dead on arrival: refused at the door.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        client.submit_sink(
            1,
            8,
            spd_payload(8, 1),
            Some(Instant::now() - Duration::from_millis(1)),
            ReplySink::channel(tx),
            false,
        );
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            reply.outcome,
            Outcome::Rejected(RejectReason::DeadlineExceeded)
        );
        // A generous deadline sails through.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        client.submit_sink(
            2,
            8,
            spd_payload(8, 2),
            Some(Instant::now() + Duration::from_secs(30)),
            ReplySink::channel(tx),
            false,
        );
        let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(reply.outcome.is_ok());
        let snap = service.shutdown();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.replies_ok, 1);
    }

    #[test]
    fn drain_answers_everything_then_refuses_new_work() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let receivers: Vec<_> = (0..30u64)
            .map(|i| client.submit(i, 8, spd_payload(8, 9000 + i)))
            .collect();
        client.begin_drain();
        let t0 = Instant::now();
        while !client.drained() {
            assert!(t0.elapsed() < Duration::from_secs(20), "drain stuck");
            std::thread::sleep(Duration::from_millis(1));
        }
        for rx in receivers {
            let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(reply.outcome.is_ok());
        }
        let reply = client.call(99, 8, spd_payload(8, 9999));
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
        service.shutdown();
    }

    #[test]
    fn large_requests_bypass_the_former_and_factor_in_place() {
        let service = Service::start(ServiceConfig::default(), EngineSelector::heuristic());
        let client = service.client();
        let n = 96; // above max_n (64): only the large path can serve it
        let a = spd_vec::<f64>(n, 321);
        let reply = client.call_large(1, n, Payload::F64(a.clone()));
        assert_eq!(reply.id, 1);
        let Outcome::Factor(Payload::F64(l)) = &reply.outcome else {
            panic!("expected f64 factor, got {:?}", reply.outcome);
        };
        // L·Lᵀ ≈ A on the lower triangle; strict upper untouched.
        for col in 0..n {
            for row in col..n {
                let mut sum = 0.0;
                for k in 0..=col {
                    sum += l[k * n + row] * l[k * n + col];
                }
                let want = a[col * n + row];
                assert!(
                    (sum - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "({row},{col}): {sum} vs {want}"
                );
            }
        }
        for col in 1..n {
            for row in 0..col {
                assert_eq!(l[col * n + row], a[col * n + row]);
            }
        }
        let snap = service.shutdown();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.large_requests, 1);
        assert_eq!(snap.large_ok, 1);
        assert_eq!(snap.replies_ok, 1);
        assert_eq!(snap.batches, 0, "large requests never form batches");
    }

    #[test]
    fn large_non_spd_reports_the_global_column() {
        let service = Service::start(ServiceConfig::default(), EngineSelector::heuristic());
        let client = service.client();
        let n = 80;
        // SPD except one poisoned diagonal entry deep inside tile row 2:
        // the failing pivot's *global* column must come back.
        let bad_col = 71;
        let mut a = spd_vec::<f64>(n, 77);
        a[bad_col * n + bad_col] = -1.0e6;
        let reply = client.call_large(9, n, Payload::F64(a));
        assert_eq!(reply.outcome, Outcome::NotSpd { column: bad_col });
        let snap = service.shutdown();
        assert_eq!(snap.large_failed, 1);
        assert_eq!(snap.replies_failed, 1);
    }

    #[test]
    fn large_admission_validates_and_drains() {
        let service = Service::start(
            ServiceConfig {
                max_large_n: 128,
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let r = client.call_large(1, 0, Payload::F32(vec![]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadDimension));
        let r = client.call_large(2, 129, Payload::F32(vec![0.0; 129 * 129]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadDimension));
        let r = client.call_large(3, 72, Payload::F32(vec![0.0; 10]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadPayload));
        // Dead on arrival sheds at the door.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        client.submit_large_sink(
            4,
            72,
            Payload::F32(spd_vec(72, 8)),
            Some(Instant::now() - Duration::from_millis(1)),
            ReplySink::channel(tx),
        );
        let r = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::DeadlineExceeded));
        // After drain, large submissions are refused ShuttingDown.
        client.begin_drain();
        assert!(client.drained());
        let r = client.call_large(5, 72, Payload::F32(spd_vec(72, 9)));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
        let snap = service.shutdown();
        assert_eq!(snap.rejected, 5);
        assert_eq!(snap.large_requests, 0);
    }

    #[test]
    fn mixed_small_and_large_traffic_all_answered() {
        let service = Service::start(
            ServiceConfig {
                workers: 2,
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let small: Vec<_> = (0..24u64)
            .map(|i| client.submit(i, 8, spd_payload(8, 100 + i)))
            .collect();
        let large: Vec<_> = (0..3u64)
            .map(|i| {
                let n = 72;
                let (tx, rx) = std::sync::mpsc::sync_channel(1);
                client.submit_large_sink(
                    1000 + i,
                    n,
                    Payload::F32(spd_vec(n, 500 + i)),
                    None,
                    ReplySink::channel(tx),
                );
                rx
            })
            .collect();
        for (i, rx) in small.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(reply.outcome.is_ok(), "small {i}: {:?}", reply.outcome);
        }
        for (i, rx) in large.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(20)).unwrap();
            assert_eq!(reply.id, 1000 + i as u64);
            assert!(reply.outcome.is_ok(), "large {i}: {:?}", reply.outcome);
        }
        let snap = service.shutdown();
        assert_eq!(snap.requests, 27);
        assert_eq!(snap.replies_ok, 27);
        assert_eq!(snap.large_ok, 3);
        assert!(snap.batches >= 1, "small traffic still batches");
    }

    #[test]
    fn f64_requests_are_served() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let n = 12;
        let a = spd_vec::<f64>(n, 99);
        let reply = client.call(5, n, Payload::F64(a.clone()));
        let Outcome::Factor(Payload::F64(l)) = &reply.outcome else {
            panic!("expected f64 factor, got {:?}", reply.outcome);
        };
        for col in 0..n {
            let mut sum = 0.0;
            for k in 0..=col {
                sum += l[k * n + col] * l[k * n + col];
            }
            assert!((sum - a[col * n + col]).abs() < 1e-9 * a[col * n + col].max(1.0));
        }
        service.shutdown();
    }
}
