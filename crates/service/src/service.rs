//! The service: ingest queue → batch former → tuned-engine worker pool,
//! with an in-process [`Client`] handle.
//!
//! Thread shape: one former thread owns the consumer side of the
//! [`IngestQueue`]; `workers` supervisor threads each own one live
//! worker thread sharing a `sync_channel` of [`FormedBatch`]es. Each
//! worker factorizes its batch in place with
//! [`factorize_batch_auto_backend`] under the plan the [`EngineSelector`]
//! chose (including its lane backend: runtime-dispatched SIMD by
//! default), then routes every per-matrix outcome — factor or non-SPD
//! failure — back to exactly the originating request's sink.
//!
//! Workers are *supervised*: a batch executes under `catch_unwind`, so a
//! panic (a kernel bug, or one injected by the chaos harness) costs only
//! that batch — its requests get a typed [`Outcome::WorkerCrashed`]
//! reply, the crashed worker thread is restarted with capped exponential
//! backoff, and the process never exits. Combined with deadline shedding
//! in the former, every admitted request receives exactly one reply no
//! matter what faults fire.

use crate::engine::EngineSelector;
use crate::fault::{silence_injected_panics, FaultAction, FaultHook, FaultSite};
use crate::former::{run_former, FormedBatch, FormerConfig, IngestMode, PackedData};
use crate::queue::{IngestQueue, PushRefused};
use crate::request::{FactorReply, Outcome, Payload, Pending, RejectReason, ReplySink};
use crate::stats::{ServiceStats, StatsSnapshot};
use ibcf_core::lane_batch::factorize_batch_auto_backend;
use ibcf_core::{CholeskyError, Real};
use ibcf_layout::{gather_matrix_affine, Layout};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing formed batches.
    pub workers: usize,
    /// Ingest queue capacity (admission-control bound).
    pub queue_cap: usize,
    /// Batch former size threshold.
    pub max_batch: usize,
    /// Batch former deadline.
    pub max_delay: Duration,
    /// Largest admissible matrix dimension.
    pub max_n: usize,
    /// Fault injection hook ([`FaultHook::disabled`] in production: one
    /// `None` check per site, no other cost).
    pub fault: FaultHook,
    /// How the former packs flushed groups ([`IngestMode::Fused`] by
    /// default; [`IngestMode::Staged`] keeps the legacy extra-copy path
    /// alive for A/B comparison).
    pub ingest: IngestMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_cap: 8192,
            max_batch: 1024,
            max_delay: Duration::from_millis(1),
            max_n: 64,
            fault: FaultHook::disabled(),
            ingest: IngestMode::Fused,
        }
    }
}

/// First supervisor backoff after a worker crash; doubles per
/// consecutive crash.
const RESTART_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Supervisor backoff ceiling.
const RESTART_BACKOFF_CAP: Duration = Duration::from_millis(250);

struct Inner {
    queue: Arc<IngestQueue>,
    stats: Arc<ServiceStats>,
    max_n: usize,
    tuned: bool,
}

/// A running factorization service. Dropping without
/// [`Service::shutdown`] detaches the threads; shut down for a clean
/// exit.
pub struct Service {
    inner: Arc<Inner>,
    former: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the former and worker threads.
    pub fn start(config: ServiceConfig, selector: EngineSelector) -> Service {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        if config.fault.is_enabled() {
            silence_injected_panics();
        }
        let queue = Arc::new(IngestQueue::new(config.queue_cap));
        let stats = Arc::new(ServiceStats::default());
        let inner = Arc::new(Inner {
            queue: queue.clone(),
            stats: stats.clone(),
            max_n: config.max_n,
            tuned: selector.is_tuned(),
        });
        // Shallow channel: the former should stall (and keep accumulating
        // arrivals into bigger batches) when workers are saturated, not
        // buffer an unbounded backlog of packed buffers.
        let (batch_tx, batch_rx) = sync_channel::<FormedBatch>(2 * config.workers);
        let former_cfg = FormerConfig {
            max_batch: config.max_batch,
            max_delay: config.max_delay,
            ingest: config.ingest,
            ..FormerConfig::default()
        };
        let former = {
            let (q, s, h) = (queue, stats.clone(), config.fault.clone());
            std::thread::Builder::new()
                .name("ibcf-former".into())
                .spawn(move || run_former(q, selector, former_cfg, s, batch_tx, h))
                .expect("spawn former")
        };
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let workers = (0..config.workers)
            .map(|w| {
                let (rx, s, h) = (batch_rx.clone(), stats.clone(), config.fault.clone());
                std::thread::Builder::new()
                    .name(format!("ibcf-supervisor-{w}"))
                    .spawn(move || run_supervisor(w, &rx, &s, &h))
                    .expect("spawn supervisor")
            })
            .collect();
        Service {
            inner,
            former: Some(former),
            workers,
        }
    }

    /// A submission handle. Clients stay valid until shutdown; submissions
    /// after shutdown are rejected with [`RejectReason::ShuttingDown`].
    pub fn client(&self) -> Client {
        Client {
            inner: self.inner.clone(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Closes the queue, drains everything already admitted, and joins
    /// all threads. Every admitted request receives its reply before this
    /// returns.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.inner.queue.close();
        if let Some(former) = self.former.take() {
            former.join().expect("former panicked");
        }
        // The former dropped the batch sender; workers drain and exit,
        // and each supervisor follows its drained worker out.
        for w in self.workers.drain(..) {
            w.join().expect("supervisor panicked");
        }
        self.inner.stats.snapshot()
    }
}

/// Why a worker thread returned.
enum WorkerExit {
    /// The batch channel disconnected and drained: clean shutdown.
    Drained,
    /// A batch panicked (caught); `processed` batches completed before
    /// the crash — the supervisor resets its backoff when that is > 0.
    Crashed { processed: u64 },
}

/// Supervises one worker slot: spawns the worker thread, joins it, and
/// respawns after a crash with capped exponential backoff. Backoff
/// resets whenever the crashed incarnation made progress first, so a
/// poisoned workload can't permanently slow a healthy worker, while a
/// crash loop (instant repeated panics) backs off instead of spinning.
fn run_supervisor(
    slot: usize,
    rx: &Arc<Mutex<Receiver<FormedBatch>>>,
    stats: &Arc<ServiceStats>,
    hook: &FaultHook,
) {
    let mut backoff = RESTART_BACKOFF_BASE;
    let mut incarnation = 0u64;
    loop {
        let (rx2, s2, h2) = (rx.clone(), stats.clone(), hook.clone());
        let worker = std::thread::Builder::new()
            .name(format!("ibcf-worker-{slot}.{incarnation}"))
            .spawn(move || run_worker(&rx2, &s2, &h2))
            .expect("spawn worker");
        match worker.join().expect("worker escaped catch_unwind") {
            WorkerExit::Drained => return,
            WorkerExit::Crashed { processed } => {
                stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                if processed > 0 {
                    backoff = RESTART_BACKOFF_BASE;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(RESTART_BACKOFF_CAP);
                incarnation += 1;
            }
        }
    }
}

/// Factorizes formed batches in place and distributes replies, until the
/// channel drains (clean exit) or a batch panics (supervised exit).
fn run_worker(
    rx: &Mutex<Receiver<FormedBatch>>,
    stats: &ServiceStats,
    hook: &FaultHook,
) -> WorkerExit {
    let mut processed = 0u64;
    loop {
        let batch = {
            let guard = rx.lock().unwrap();
            match guard.recv() {
                Ok(b) => b,
                Err(_) => return WorkerExit::Drained, // former gone, drained
            }
        };
        match execute_batch(batch, stats, hook) {
            Ok(()) => processed += 1,
            Err(()) => return WorkerExit::Crashed { processed },
        }
    }
}

/// Runs one batch. A panic inside the factorization (or one injected by
/// the chaos hook) is caught here: every request in the batch gets a
/// typed [`Outcome::WorkerCrashed`] reply — never silence, never a
/// process abort — and `Err` tells the worker loop to die and be
/// restarted by its supervisor.
fn execute_batch(batch: FormedBatch, stats: &ServiceStats, hook: &FaultHook) -> Result<(), ()> {
    let FormedBatch {
        n,
        plan,
        layout,
        mut data,
        reqs,
        ..
    } = batch;
    let mut inject_panic = false;
    match hook.check(FaultSite::WorkerBatch) {
        Some(FaultAction::PanicWorker) => inject_panic = true,
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        _ => {}
    }
    // The requests (and their reply sinks) stay *outside* the unwind
    // scope: only the packed buffer and the factorization cross it, so a
    // panic can still be routed back to every originator.
    let factored = catch_unwind(AssertUnwindSafe(move || {
        if inject_panic {
            panic!("{} (chaos harness)", crate::fault::INJECTED_PANIC_MARKER);
        }
        let failures = match &mut data {
            PackedData::F32(buf) => {
                factorize_batch_auto_backend(
                    &layout,
                    buf.as_mut_slice(),
                    plan.order,
                    plan.width,
                    plan.backend,
                )
                .failures
            }
            PackedData::F64(buf) => {
                factorize_batch_auto_backend(
                    &layout,
                    buf.as_mut_slice(),
                    plan.order,
                    plan.width,
                    plan.backend,
                )
                .failures
            }
        };
        (data, failures)
    }));
    let (data, failures) = match factored {
        Ok(pair) => pair,
        Err(_) => {
            stats.worker_crashes.fetch_add(1, Ordering::Relaxed);
            for req in reqs {
                let latency = req.enqueued.elapsed();
                (req.sink)(FactorReply {
                    id: req.id,
                    outcome: Outcome::WorkerCrashed,
                });
                // Counters bump *after* delivery so `drained()` implies
                // every reply already left through its sink.
                stats.record_latency(latency);
                stats.replies_failed.fetch_add(1, Ordering::Relaxed);
            }
            return Err(());
        }
    };
    // `failures` is sorted by matrix index; walk it alongside the
    // requests so each failure lands on exactly its originator.
    let mut fail_iter = failures.into_iter().peekable();
    for (mat, req) in reqs.into_iter().enumerate() {
        let failure = match fail_iter.peek() {
            Some(&(idx, _)) if idx == mat => fail_iter.next().map(|(_, e)| e),
            _ => None,
        };
        let outcome = match failure {
            Some(CholeskyError::NotPositiveDefinite { column }) => Outcome::NotSpd { column },
            Some(CholeskyError::NonFinite { column }) => Outcome::NonFinite { column },
            None => Outcome::Factor(gather_payload(&layout, &data, mat, n)),
        };
        let ok = outcome.is_ok();
        let latency = req.enqueued.elapsed();
        (req.sink)(FactorReply {
            id: req.id,
            outcome,
        });
        // Counters bump *after* delivery so `drained()` implies every
        // reply already left through its sink.
        stats.record_latency(latency);
        if ok {
            stats.replies_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.replies_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Any remaining failure would sit in a padding slot — impossible,
    // padding is the identity matrix.
    debug_assert!(
        fail_iter.peek().is_none(),
        "failure reported for an identity padding slot"
    );
    Ok(())
}

fn gather_payload(layout: &Layout, data: &PackedData, mat: usize, n: usize) -> Payload {
    fn full_square<T: Real>(layout: &Layout, data: &[T], mat: usize, n: usize) -> Vec<T> {
        let mut out = vec![T::ZERO; n * n];
        gather_matrix_affine(layout, data, mat, &mut out, n);
        out
    }
    match data {
        PackedData::F32(v) => Payload::F32(full_square(layout, v.as_slice(), mat, n)),
        PackedData::F64(v) => Payload::F64(full_square(layout, v.as_slice(), mat, n)),
    }
}

/// An in-process submission handle (cheap to clone, `Send`).
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// `true` if the service was started from a tuned dispatch table.
    pub fn is_tuned(&self) -> bool {
        self.inner.tuned
    }

    /// Current counters (serves the `stats` request).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Largest admissible `n`.
    pub fn max_n(&self) -> usize {
        self.inner.max_n
    }

    /// Stops admission (new submissions are rejected with
    /// [`RejectReason::ShuttingDown`]) while everything already admitted
    /// keeps flowing to workers. Poll [`Client::drained`] to learn when
    /// every admitted request has been answered.
    pub fn begin_drain(&self) {
        self.inner.queue.close();
    }

    /// `true` once every admitted request has received its reply. Only
    /// meaningful after [`Client::begin_drain`] (or shutdown) stopped
    /// admission; before that, in-flight arrivals can flip it back.
    pub fn drained(&self) -> bool {
        let s = &self.inner.stats;
        let answered = s.replies_ok.load(Ordering::Relaxed)
            + s.replies_failed.load(Ordering::Relaxed)
            + s.deadline_expired.load(Ordering::Relaxed);
        answered >= s.requests.load(Ordering::Relaxed)
    }

    /// Requests queued but not yet drained into a batch — the router's
    /// least-loaded signal.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// `true` while the ingest queue still admits new work; flips false
    /// once a drain or shutdown began. The router's health probe.
    pub fn is_accepting(&self) -> bool {
        !self.inner.queue.is_closed()
    }

    /// Non-blocking admission that hands everything back on refusal:
    /// like `submit_sink(.., blocking = false)` but instead of rejecting
    /// through the sink, a refusal returns `(reason, payload, sink)` to
    /// the caller — nothing was delivered, nothing was counted — so a
    /// router can re-route the request to another shard or translate a
    /// full queue into a typed backpressure reject. On `Ok` the request
    /// was admitted and the sink will be invoked exactly once by the
    /// service.
    #[allow(clippy::type_complexity)]
    pub fn try_submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), (RejectReason, Payload, ReplySink)> {
        if n == 0 || n > self.inner.max_n {
            return Err((RejectReason::BadDimension, payload, sink));
        }
        if payload.len() != n * n {
            return Err((RejectReason::BadPayload, payload, sink));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err((RejectReason::DeadlineExceeded, payload, sink));
        }
        let pending = Pending {
            id,
            n,
            payload,
            enqueued: Instant::now(),
            deadline,
            sink,
        };
        match self.inner.queue.try_push(pending) {
            Ok(()) => {
                self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err((p, closed)) => {
                let reason = if closed {
                    RejectReason::ShuttingDown
                } else {
                    RejectReason::QueueFull
                };
                Err((reason, p.payload, p.sink))
            }
        }
    }

    /// Submits a request, delivering the reply through `sink`. With
    /// `blocking` the call waits for queue space (backpressure);
    /// otherwise a full queue rejects immediately (admission control).
    /// A `deadline` propagates to the former: if it expires before the
    /// request is packed into a batch, the request is shed with
    /// [`RejectReason::DeadlineExceeded`]. The sink is always invoked
    /// exactly once, inline for rejections.
    pub fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        blocking: bool,
    ) {
        let reject = |sink: ReplySink, reason: RejectReason, stats: &ServiceStats| {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            sink(FactorReply {
                id,
                outcome: Outcome::Rejected(reason),
            });
        };
        if n == 0 || n > self.inner.max_n {
            return reject(sink, RejectReason::BadDimension, &self.inner.stats);
        }
        if payload.len() != n * n {
            return reject(sink, RejectReason::BadPayload, &self.inner.stats);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // Dead on arrival: refuse at the door rather than admitting
            // work the former would immediately shed.
            return reject(sink, RejectReason::DeadlineExceeded, &self.inner.stats);
        }
        let pending = Pending {
            id,
            n,
            payload,
            enqueued: Instant::now(),
            deadline,
            sink,
        };
        let outcome = if blocking {
            self.inner.queue.push_wait(pending).map_err(|e| match e {
                PushRefused::ShuttingDown(p) => (p, RejectReason::ShuttingDown),
                PushRefused::DeadlineExceeded(p) => (p, RejectReason::DeadlineExceeded),
            })
        } else {
            self.inner.queue.try_push(pending).map_err(|(p, closed)| {
                let reason = if closed {
                    RejectReason::ShuttingDown
                } else {
                    RejectReason::QueueFull
                };
                (p, reason)
            })
        };
        match outcome {
            Ok(()) => {
                self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
            }
            Err((p, reason)) => reject(p.sink, reason, &self.inner.stats),
        }
    }

    /// Submits and returns a receiver for the reply (non-blocking
    /// admission, no deadline).
    pub fn submit(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
    ) -> std::sync::mpsc::Receiver<FactorReply> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_sink(
            id,
            n,
            payload,
            None,
            Box::new(move |r| drop(tx.send(r))),
            false,
        );
        rx
    }

    /// Submits with backpressure and waits for the reply.
    pub fn call(&self, id: u64, n: usize, payload: Payload) -> FactorReply {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_sink(
            id,
            n,
            payload,
            None,
            Box::new(move |r| drop(tx.send(r))),
            true,
        );
        rx.recv().expect("reply sink dropped without reply")
    }
}

/// What the TCP front-end needs from whatever answers requests: one
/// service's [`Client`], or a [`RouterClient`](crate::router::RouterClient)
/// fronting a whole fleet. The contract is the service one — `submit_sink`
/// invokes its sink exactly once (inline for rejections), and once
/// `begin_drain` stopped admission, `drained` eventually turns (and
/// stays) true.
pub trait Frontend: Clone + Send + 'static {
    /// Submits one request; the reply arrives through `sink` exactly
    /// once. Implementations may ignore `blocking` (the router never
    /// blocks — it sheds with a typed backpressure reject instead).
    fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        blocking: bool,
    );
    /// Current counters, for the stats frame.
    fn stats(&self) -> StatsSnapshot;
    /// Stops admission; already-admitted work keeps draining.
    fn begin_drain(&self);
    /// `true` once every admitted request has been answered.
    fn drained(&self) -> bool;
}

impl Frontend for Client {
    fn submit_sink(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
        blocking: bool,
    ) {
        Client::submit_sink(self, id, n, payload, deadline, sink, blocking);
    }

    fn stats(&self) -> StatsSnapshot {
        Client::stats(self)
    }

    fn begin_drain(&self) {
        Client::begin_drain(self);
    }

    fn drained(&self) -> bool {
        Client::drained(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_core::spd::{random_spd, SpdKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd_vec<T: Real>(n: usize, seed: u64) -> Vec<T> {
        let mut rng = StdRng::seed_from_u64(seed);
        random_spd::<T>(n, SpdKind::Wishart, &mut rng).into_vec()
    }

    fn spd_payload(n: usize, seed: u64) -> Payload {
        Payload::F32(spd_vec(n, seed))
    }

    fn neg_identity(n: usize) -> Payload {
        let mut m = vec![0.0f32; n * n];
        for d in 0..n {
            m[d * n + d] = -1.0;
        }
        Payload::F32(m)
    }

    fn check_factor(n: usize, input: &Payload, reply: &FactorReply) {
        let Outcome::Factor(Payload::F32(out)) = &reply.outcome else {
            panic!("expected a factor, got {:?}", reply.outcome);
        };
        let Payload::F32(a) = input else {
            unreachable!()
        };
        // L·Lᵀ ≈ A on the lower triangle.
        for col in 0..n {
            for row in col..n {
                let mut sum = 0.0f64;
                for k in 0..=col.min(row) {
                    sum += out[k * n + row] as f64 * out[k * n + col] as f64;
                }
                let want = a[col * n + row] as f64;
                assert!(
                    (sum - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "n={n} ({row},{col}): {sum} vs {want}"
                );
            }
        }
        // Strict upper triangle is the input, untouched.
        for col in 1..n {
            for row in 0..col {
                assert_eq!(out[col * n + row], a[col * n + row]);
            }
        }
    }

    #[test]
    fn end_to_end_factorization_round_trip() {
        let service = Service::start(
            ServiceConfig {
                workers: 2,
                max_delay: Duration::from_millis(2),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let inputs: Vec<(u64, usize, Payload)> = (0..40)
            .map(|i| {
                let n = [3, 8, 16, 17][i as usize % 4];
                (i, n, spd_payload(n, 1000 + i))
            })
            .collect();
        let receivers: Vec<_> = inputs
            .iter()
            .map(|(id, n, p)| client.submit(*id, *n, p.clone()))
            .collect();
        for ((id, n, input), rx) in inputs.iter().zip(receivers) {
            let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(reply.id, *id);
            check_factor(*n, input, &reply);
        }
        let snap = service.shutdown();
        assert_eq!(snap.requests, 40);
        assert_eq!(snap.replies_ok, 40);
        assert_eq!(snap.rejected, 0);
        assert!(snap.batches >= 4, "four (n, dtype) groups at minimum");
    }

    #[test]
    fn non_spd_failure_routes_to_exactly_the_bad_request() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(2),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let n = 16;
        // One poisoned request sandwiched between good neighbors that land
        // in the same (n, dtype) batch.
        let receivers: Vec<_> = (0..20u64)
            .map(|i| {
                let payload = if i == 7 {
                    neg_identity(n)
                } else {
                    spd_payload(n, 2000 + i)
                };
                client.submit(i, n, payload)
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(reply.id, i as u64);
            if i == 7 {
                assert_eq!(reply.outcome, Outcome::NotSpd { column: 0 });
            } else {
                assert!(reply.outcome.is_ok(), "req {i}: {:?}", reply.outcome);
            }
        }
        let snap = service.shutdown();
        assert_eq!(snap.replies_failed, 1);
        assert_eq!(snap.replies_ok, 19);
    }

    #[test]
    fn admission_control_rejects_malformed_and_oversize_requests() {
        let service = Service::start(ServiceConfig::default(), EngineSelector::heuristic());
        let client = service.client();
        let r = client.call(1, 0, Payload::F32(vec![]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadDimension));
        let r = client.call(2, 65, Payload::F32(vec![0.0; 65 * 65]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadDimension));
        let r = client.call(3, 8, Payload::F32(vec![0.0; 63]));
        assert_eq!(r.outcome, Outcome::Rejected(RejectReason::BadPayload));
        let snap = service.shutdown();
        assert_eq!(snap.rejected, 3);
        assert_eq!(snap.requests, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_rejected_shutting_down() {
        let service = Service::start(ServiceConfig::default(), EngineSelector::heuristic());
        let client = service.client();
        let reply = client.call(1, 8, spd_payload(8, 42));
        assert!(reply.outcome.is_ok());
        service.shutdown();
        let reply = client.call(2, 8, spd_payload(8, 43));
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
        let rx = client.submit(3, 8, spd_payload(8, 44));
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
    }

    #[test]
    fn worker_panics_are_contained_typed_and_survived() {
        use crate::fault::FaultPlan;
        // A panic plan that fires every few batches: many batches must
        // crash, every crashed batch's requests must get a typed
        // WorkerCrashed reply, and the service must keep serving.
        let hook = FaultHook::from_plan(FaultPlan::worker_panic(0xC0FFEE));
        let service = Service::start(
            ServiceConfig {
                workers: 2,
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                fault: hook.clone(),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let total = 96u64;
        let receivers: Vec<_> = (0..total)
            .map(|i| client.submit(i, 8, spd_payload(8, 5000 + i)))
            .collect();
        let mut ok = 0u64;
        let mut crashed = 0u64;
        for (i, rx) in receivers.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(20)).unwrap();
            assert_eq!(reply.id, i as u64, "replies route to their originator");
            match reply.outcome {
                Outcome::Factor(_) => ok += 1,
                Outcome::WorkerCrashed => crashed += 1,
                other => panic!("req {i}: unexpected outcome {other:?}"),
            }
        }
        let snap = service.shutdown();
        assert_eq!(ok + crashed, total, "exactly one reply per request");
        assert!(
            snap.worker_crashes >= 3,
            "plan should fire repeatedly, got {} crashes",
            snap.worker_crashes
        );
        // Crashes count per batch, crashed replies per request: every
        // crashed batch holds between 1 and `max_batch` requests.
        assert!(
            crashed >= snap.worker_crashes,
            "every crash answered someone"
        );
        assert!(
            crashed <= snap.worker_crashes * 4,
            "crashed replies bounded by batch size"
        );
        assert_eq!(snap.worker_restarts, snap.worker_crashes);
        assert_eq!(snap.replies_ok, ok);
        assert!(hook.injected() >= 3);
    }

    #[test]
    fn queue_stall_faults_delay_but_never_lose_requests() {
        use crate::fault::FaultPlan;
        let hook = FaultHook::from_plan(FaultPlan::queue_stall(7));
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                fault: hook.clone(),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        // Trickle requests in so the former's drain loop actually
        // iterates enough times to reach the plan's clock residue.
        let receivers: Vec<_> = (0..50u64)
            .map(|i| {
                if i % 2 == 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                client.submit(i, 8, spd_payload(8, 7000 + i))
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(20)).unwrap();
            assert!(reply.outcome.is_ok(), "req {i}: {:?}", reply.outcome);
        }
        let snap = service.shutdown();
        assert_eq!(snap.replies_ok, 50);
        assert!(hook.injected() > 0, "the stall plan must actually fire");
    }

    #[test]
    fn expired_deadline_requests_get_typed_replies() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        // Dead on arrival: refused at the door.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        client.submit_sink(
            1,
            8,
            spd_payload(8, 1),
            Some(Instant::now() - Duration::from_millis(1)),
            Box::new(move |r| drop(tx.send(r))),
            false,
        );
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            reply.outcome,
            Outcome::Rejected(RejectReason::DeadlineExceeded)
        );
        // A generous deadline sails through.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        client.submit_sink(
            2,
            8,
            spd_payload(8, 2),
            Some(Instant::now() + Duration::from_secs(30)),
            Box::new(move |r| drop(tx.send(r))),
            false,
        );
        let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(reply.outcome.is_ok());
        let snap = service.shutdown();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.replies_ok, 1);
    }

    #[test]
    fn drain_answers_everything_then_refuses_new_work() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let receivers: Vec<_> = (0..30u64)
            .map(|i| client.submit(i, 8, spd_payload(8, 9000 + i)))
            .collect();
        client.begin_drain();
        let t0 = Instant::now();
        while !client.drained() {
            assert!(t0.elapsed() < Duration::from_secs(20), "drain stuck");
            std::thread::sleep(Duration::from_millis(1));
        }
        for rx in receivers {
            let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(reply.outcome.is_ok());
        }
        let reply = client.call(99, 8, spd_payload(8, 9999));
        assert_eq!(reply.outcome, Outcome::Rejected(RejectReason::ShuttingDown));
        service.shutdown();
    }

    #[test]
    fn f64_requests_are_served() {
        let service = Service::start(
            ServiceConfig {
                max_delay: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            EngineSelector::heuristic(),
        );
        let client = service.client();
        let n = 12;
        let a = spd_vec::<f64>(n, 99);
        let reply = client.call(5, n, Payload::F64(a.clone()));
        let Outcome::Factor(Payload::F64(l)) = &reply.outcome else {
            panic!("expected f64 factor, got {:?}", reply.outcome);
        };
        for col in 0..n {
            let mut sum = 0.0;
            for k in 0..=col {
                sum += l[k * n + col] * l[k * n + col];
            }
            assert!((sum - a[col * n + col]).abs() < 1e-9 * a[col * n + col].max(1.0));
        }
        service.shutdown();
    }
}
