//! Service counters: request/batch accounting, a batch-occupancy
//! histogram, and an enqueue-to-reply latency histogram with percentile
//! extraction.
//!
//! Everything is lock-free atomics so the hot path (workers finishing
//! thousands of matrices per batch) never serializes on a stats mutex.
//! Latencies go into power-of-two nanosecond buckets; percentiles are
//! read out as the geometric midpoint of the covering bucket, which is
//! exact to within ~41% of the value — plenty for p50/p95/p99 that span
//! orders of magnitude between an in-process call and a deadline flush.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^(i-1), 2^i)` ns; bucket 0 is `< 1` ns; the last bucket is open).
pub const LATENCY_BUCKETS: usize = 48;

/// Number of occupancy buckets (10% each; the last includes 100%).
pub const OCCUPANCY_BUCKETS: usize = 10;

/// Live, thread-shared counters.
#[derive(Debug)]
pub struct ServiceStats {
    /// Requests admitted into the queue.
    pub requests: AtomicU64,
    /// Requests refused (admission control, bad dimension, bad payload).
    pub rejected: AtomicU64,
    /// Replies delivered with a factor.
    pub replies_ok: AtomicU64,
    /// Replies delivered with a per-matrix failure (non-SPD, non-finite).
    pub replies_failed: AtomicU64,
    /// Batches formed and executed.
    pub batches: AtomicU64,
    /// Live matrices factorized across all batches (excludes padding).
    pub matrices: AtomicU64,
    /// Worker panics caught by the supervisor (each fails one batch).
    pub worker_crashes: AtomicU64,
    /// Worker threads restarted by the supervisor after a crash.
    pub worker_restarts: AtomicU64,
    /// Requests shed because their deadline expired before packing.
    pub deadline_expired: AtomicU64,
    /// Batches assembled by the fused (zero-copy scatter) ingest path.
    pub ingest_fused: AtomicU64,
    /// Batches assembled by the legacy stage-then-pack ingest path.
    pub ingest_staged: AtomicU64,
    /// Large-matrix requests admitted to the task-graph pool (a subset
    /// of `requests`).
    pub large_requests: AtomicU64,
    /// Large-matrix factorizations delivered (subset of `replies_ok`).
    pub large_ok: AtomicU64,
    /// Large-matrix failures delivered — non-SPD, non-finite, or a
    /// worker crash mid-DAG (subset of `replies_failed`).
    pub large_failed: AtomicU64,
    occupancy: [AtomicU64; OCCUPANCY_BUCKETS],
    occupancy_sum_milli: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats {
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            replies_ok: AtomicU64::new(0),
            replies_failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            matrices: AtomicU64::new(0),
            worker_crashes: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            ingest_fused: AtomicU64::new(0),
            ingest_staged: AtomicU64::new(0),
            large_requests: AtomicU64::new(0),
            large_ok: AtomicU64::new(0),
            large_failed: AtomicU64::new(0),
            occupancy: std::array::from_fn(|_| AtomicU64::new(0)),
            occupancy_sum_milli: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServiceStats {
    /// Records one formed batch: `live` real requests in `slots` padded
    /// lane slots.
    pub fn record_batch(&self, live: usize, slots: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.matrices.fetch_add(live as u64, Ordering::Relaxed);
        let frac = if slots == 0 {
            0.0
        } else {
            live as f64 / slots as f64
        };
        let bucket = ((frac * OCCUPANCY_BUCKETS as f64) as usize).min(OCCUPANCY_BUCKETS - 1);
        self.occupancy[bucket].fetch_add(1, Ordering::Relaxed);
        self.occupancy_sum_milli
            .fetch_add((frac * 1000.0) as u64, Ordering::Relaxed);
    }

    /// Records which ingest path assembled one batch.
    pub fn record_ingest(&self, fused: bool) {
        if fused {
            self.ingest_fused.fetch_add(1, Ordering::Relaxed);
        } else {
            self.ingest_staged.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one reply's enqueue-to-reply latency.
    pub fn record_latency(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of every counter (individual loads are
    /// relaxed; exactness across counters is not needed for reporting).
    pub fn snapshot(&self) -> StatsSnapshot {
        let occupancy_hist: Vec<u64> = self
            .occupancy
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let latency_hist: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let batches = self.batches.load(Ordering::Relaxed);
        let mean_occupancy = if batches == 0 {
            0.0
        } else {
            self.occupancy_sum_milli.load(Ordering::Relaxed) as f64 / 1000.0 / batches as f64
        };
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            replies_ok: self.replies_ok.load(Ordering::Relaxed),
            replies_failed: self.replies_failed.load(Ordering::Relaxed),
            batches,
            matrices: self.matrices.load(Ordering::Relaxed),
            worker_crashes: self.worker_crashes.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            ingest_fused: self.ingest_fused.load(Ordering::Relaxed),
            ingest_staged: self.ingest_staged.load(Ordering::Relaxed),
            large_requests: self.large_requests.load(Ordering::Relaxed),
            large_ok: self.large_ok.load(Ordering::Relaxed),
            large_failed: self.large_failed.load(Ordering::Relaxed),
            mean_occupancy,
            occupancy_hist,
            latency_hist,
            shards: None,
            fleet: None,
        }
    }
}

/// A point-in-time copy of [`ServiceStats`], serializable for the `stats`
/// wire request and CLI reports.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests admitted into the queue.
    pub requests: u64,
    /// Requests refused.
    pub rejected: u64,
    /// Successful replies.
    pub replies_ok: u64,
    /// Per-matrix failure replies.
    pub replies_failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Live matrices factorized.
    pub matrices: u64,
    /// Worker panics caught by the supervisor.
    pub worker_crashes: u64,
    /// Worker threads restarted after a crash.
    pub worker_restarts: u64,
    /// Requests shed on an expired deadline before packing.
    pub deadline_expired: u64,
    /// Batches assembled by the fused (zero-copy scatter) ingest path.
    pub ingest_fused: u64,
    /// Batches assembled by the legacy stage-then-pack ingest path.
    pub ingest_staged: u64,
    /// Large-matrix requests admitted to the task-graph pool (a subset
    /// of `requests`).
    pub large_requests: u64,
    /// Large-matrix factorizations delivered (subset of `replies_ok`).
    pub large_ok: u64,
    /// Large-matrix failures delivered (subset of `replies_failed`).
    pub large_failed: u64,
    /// Mean live/slots fraction over all batches.
    pub mean_occupancy: f64,
    /// 10%-wide occupancy buckets.
    pub occupancy_hist: Vec<u64>,
    /// Power-of-two nanosecond latency buckets.
    pub latency_hist: Vec<u64>,
    /// Per-shard breakdown when this snapshot describes a routed fleet;
    /// `None` for a single service. Optional so old and new snapshots
    /// keep deserializing each other.
    pub shards: Option<Vec<ShardStat>>,
    /// Router-level robustness counters (hedging, in-flight failover,
    /// circuit breakers) when this snapshot describes a routed fleet;
    /// `None` for a single service. Optional for the same
    /// cross-version-deserialization reason as `shards`.
    pub fleet: Option<FleetStat>,
}

/// Fleet-level robustness counters the router accumulates on top of the
/// per-shard [`StatsSnapshot`] merge: these events happen *between*
/// shards (a hedge copy on a second shard, a resubmission after a shard
/// process died), so no single shard's counters can account for them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetStat {
    /// Hedge copies actually dispatched to a second shard.
    pub hedges: u64,
    /// Duplicate replies suppressed at the shared reply sink (either the
    /// hedge lost the race, or it won and the primary's reply was
    /// swallowed) — the exactly-one-reply ledger for hedging.
    pub hedge_wasted: u64,
    /// In-flight requests that came back `ShardLost` and were
    /// transparently resubmitted (exactly once) to a healthy shard.
    pub shard_lost_resubmits: u64,
    /// Circuit-breaker transitions closed → open across the fleet.
    pub breaker_trips: u64,
    /// Circuit-breaker transitions open → half-open (cooldown expired,
    /// probe admitted).
    pub breaker_half_opens: u64,
    /// Circuit-breaker transitions half-open → closed (probe succeeded,
    /// shard readmitted).
    pub breaker_closes: u64,
}

impl FleetStat {
    /// Field-wise sum (fleet merges, like counter merges, are addition).
    pub fn merge(&self, other: &FleetStat) -> FleetStat {
        FleetStat {
            hedges: self.hedges + other.hedges,
            hedge_wasted: self.hedge_wasted + other.hedge_wasted,
            shard_lost_resubmits: self.shard_lost_resubmits + other.shard_lost_resubmits,
            breaker_trips: self.breaker_trips + other.breaker_trips,
            breaker_half_opens: self.breaker_half_opens + other.breaker_half_opens,
            breaker_closes: self.breaker_closes + other.breaker_closes,
        }
    }
}

/// One shard's contribution to a fleet snapshot: its own full
/// [`StatsSnapshot`] plus the router's view of its health.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardStat {
    /// The shard's display name (e.g. `shard-0`).
    pub name: String,
    /// Whether the router's health loop considered it routable at
    /// snapshot time.
    pub healthy: bool,
    /// Requests the router sent its way.
    pub routed: u64,
    /// The shard's circuit-breaker view at snapshot time; `None` when
    /// the snapshot predates breakers (optional so old and new snapshots
    /// keep deserializing each other).
    pub breaker: Option<BreakerStat>,
    /// The shard's own counters and histograms.
    pub snapshot: StatsSnapshot,
}

/// One shard's circuit-breaker state as the router saw it at snapshot
/// time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakerStat {
    /// `closed`, `open`, or `half-open`.
    pub state: String,
    /// Times this shard's breaker tripped (closed → open).
    pub trips: u64,
}

impl StatsSnapshot {
    /// The `q`-quantile (`0 < q <= 1`) of the latency histogram, in
    /// microseconds: the geometric midpoint of the bucket holding the
    /// quantile sample. `None` until at least one reply was recorded.
    pub fn latency_quantile_us(&self, q: f64) -> Option<f64> {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                let hi = (1u128 << i) as f64;
                let lo = if i == 0 {
                    0.5
                } else {
                    (1u128 << (i - 1)) as f64
                };
                return Some((lo * hi).sqrt() / 1000.0);
            }
        }
        None
    }

    /// p50/p95/p99 latency in microseconds (zeros until data exists).
    pub fn percentiles_us(&self) -> (f64, f64, f64) {
        (
            self.latency_quantile_us(0.50).unwrap_or(0.0),
            self.latency_quantile_us(0.95).unwrap_or(0.0),
            self.latency_quantile_us(0.99).unwrap_or(0.0),
        )
    }

    /// Combines two snapshots (e.g. from sharded services or across a
    /// restart) by summing counters and histograms bucket-wise. Because
    /// the histograms use fixed bucket boundaries, any quantile of the
    /// merge is bracketed by the same quantile of the two inputs, and
    /// quantiles stay monotone in `q`.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        fn add_hist(a: &[u64], b: &[u64]) -> Vec<u64> {
            (0..a.len().max(b.len()))
                .map(|i| a.get(i).copied().unwrap_or(0) + b.get(i).copied().unwrap_or(0))
                .collect()
        }
        let batches = self.batches + other.batches;
        let mean_occupancy = if batches == 0 {
            0.0
        } else {
            (self.mean_occupancy * self.batches as f64
                + other.mean_occupancy * other.batches as f64)
                / batches as f64
        };
        StatsSnapshot {
            requests: self.requests + other.requests,
            rejected: self.rejected + other.rejected,
            replies_ok: self.replies_ok + other.replies_ok,
            replies_failed: self.replies_failed + other.replies_failed,
            batches,
            matrices: self.matrices + other.matrices,
            worker_crashes: self.worker_crashes + other.worker_crashes,
            worker_restarts: self.worker_restarts + other.worker_restarts,
            deadline_expired: self.deadline_expired + other.deadline_expired,
            ingest_fused: self.ingest_fused + other.ingest_fused,
            ingest_staged: self.ingest_staged + other.ingest_staged,
            large_requests: self.large_requests + other.large_requests,
            large_ok: self.large_ok + other.large_ok,
            large_failed: self.large_failed + other.large_failed,
            mean_occupancy,
            occupancy_hist: add_hist(&self.occupancy_hist, &other.occupancy_hist),
            latency_hist: add_hist(&self.latency_hist, &other.latency_hist),
            shards: match (&self.shards, &other.shards) {
                (None, None) => None,
                (a, b) => Some(
                    a.iter()
                        .flatten()
                        .chain(b.iter().flatten())
                        .cloned()
                        .collect(),
                ),
            },
            fleet: match (&self.fleet, &other.fleet) {
                (None, None) => None,
                (Some(a), None) => Some(a.clone()),
                (None, Some(b)) => Some(b.clone()),
                (Some(a), Some(b)) => Some(a.merge(b)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_mean_and_buckets() {
        let s = ServiceStats::default();
        s.record_batch(16, 16); // 100%
        s.record_batch(8, 16); // 50%
        s.record_batch(1, 16); // 6.25%
        let snap = s.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.matrices, 25);
        assert!((snap.mean_occupancy - (1.0 + 0.5 + 0.0625) / 3.0).abs() < 1e-2);
        assert_eq!(snap.occupancy_hist[9], 1);
        assert_eq!(snap.occupancy_hist[5], 1);
        assert_eq!(snap.occupancy_hist[0], 1);
    }

    #[test]
    fn latency_percentiles_bracket_the_data() {
        let s = ServiceStats::default();
        for _ in 0..99 {
            s.record_latency(Duration::from_micros(100));
        }
        s.record_latency(Duration::from_millis(10));
        let snap = s.snapshot();
        let (p50, p95, p99) = snap.percentiles_us();
        // Bucketed estimates: within a factor of 2 of the true value.
        assert!((50.0..200.0).contains(&p50), "p50={p50}");
        assert!((50.0..200.0).contains(&p95), "p95={p95}");
        assert!((50.0..200.0).contains(&p99), "p99={p99}");
        let p100 = snap.latency_quantile_us(1.0).unwrap();
        assert!((5_000.0..20_000.0).contains(&p100), "p100={p100}");
    }

    #[test]
    fn empty_snapshot_has_no_percentiles() {
        let snap = ServiceStats::default().snapshot();
        assert!(snap.latency_quantile_us(0.5).is_none());
        assert_eq!(snap.percentiles_us(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        // Churn check: latency/occupancy histograms and the restart
        // counters are hammered from many threads at once; the final
        // snapshot must account for every single recorded event.
        use std::sync::Arc;
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;
        let s = Arc::new(ServiceStats::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        s.record_latency(Duration::from_nanos((1 + t * i) as u64));
                        s.record_batch(i % 17, 16.max(i % 17));
                        s.worker_crashes.fetch_add(1, Ordering::Relaxed);
                        s.worker_restarts.fetch_add(1, Ordering::Relaxed);
                        s.deadline_expired.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        let want = (THREADS * PER_THREAD) as u64;
        assert_eq!(snap.latency_hist.iter().sum::<u64>(), want);
        assert_eq!(snap.occupancy_hist.iter().sum::<u64>(), want);
        assert_eq!(snap.batches, want);
        assert_eq!(snap.worker_crashes, want);
        assert_eq!(snap.worker_restarts, want);
        assert_eq!(snap.deadline_expired, want);
        assert!((0.0..=1.0).contains(&snap.mean_occupancy));
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed_under_merge() {
        let fast = ServiceStats::default();
        for i in 0..500u64 {
            fast.record_latency(Duration::from_micros(50 + i % 100));
        }
        let slow = ServiceStats::default();
        for i in 0..300u64 {
            slow.record_latency(Duration::from_millis(2 + i % 8));
        }
        let (a, b) = (fast.snapshot(), slow.snapshot());
        let m = a.merge(&b);
        assert_eq!(
            m.latency_hist.iter().sum::<u64>(),
            a.latency_hist.iter().sum::<u64>() + b.latency_hist.iter().sum::<u64>()
        );
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut prev = 0.0;
        for q in qs {
            let (qa, qb, qm) = (
                a.latency_quantile_us(q).unwrap(),
                b.latency_quantile_us(q).unwrap(),
                m.latency_quantile_us(q).unwrap(),
            );
            // Monotone in q...
            assert!(qm >= prev, "q={q}: {qm} < {prev}");
            prev = qm;
            // ...and bracketed by the inputs' same quantile.
            assert!(
                qm >= qa.min(qb) && qm <= qa.max(qb),
                "q={q}: merged {qm} outside [{}, {}]",
                qa.min(qb),
                qa.max(qb)
            );
        }
        // Counter merge is plain addition.
        let x = StatsSnapshot {
            worker_crashes: 3,
            worker_restarts: 2,
            ..StatsSnapshot::default()
        };
        let y = x.merge(&x);
        assert_eq!((y.worker_crashes, y.worker_restarts), (6, 4));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = ServiceStats::default();
        s.requests.fetch_add(7, Ordering::Relaxed);
        s.record_batch(10, 16);
        s.record_latency(Duration::from_micros(250));
        let snap = s.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.requests, 7);
        assert_eq!(back.occupancy_hist, snap.occupancy_hist);
        assert_eq!(back.latency_hist, snap.latency_hist);
        assert!(back.shards.is_none(), "single service has no shard list");
    }

    #[test]
    fn fleet_counters_survive_json_and_merge_additively() {
        let fleet = StatsSnapshot {
            fleet: Some(FleetStat {
                hedges: 4,
                hedge_wasted: 1,
                shard_lost_resubmits: 2,
                breaker_trips: 3,
                breaker_half_opens: 2,
                breaker_closes: 2,
            }),
            ..StatsSnapshot::default()
        };
        let text = serde_json::to_string(&fleet).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.fleet, fleet.fleet);

        let m = fleet.merge(&fleet);
        let f = m.fleet.as_ref().unwrap();
        assert_eq!(f.hedges, 8);
        assert_eq!(f.shard_lost_resubmits, 4);
        assert_eq!(f.breaker_closes, 4);
        // Merging with a plain service snapshot keeps the fleet side.
        assert_eq!(fleet.merge(&StatsSnapshot::default()).fleet, fleet.fleet);
        // Two plain services merge to no fleet counters at all.
        assert!(StatsSnapshot::default()
            .merge(&StatsSnapshot::default())
            .fleet
            .is_none());
    }

    #[test]
    fn shard_breakdown_survives_json_and_merge() {
        let shard = |name: &str, requests: u64, healthy: bool| ShardStat {
            name: name.to_string(),
            healthy,
            routed: requests,
            breaker: Some(BreakerStat {
                state: "closed".to_string(),
                trips: 0,
            }),
            snapshot: StatsSnapshot {
                requests,
                ..StatsSnapshot::default()
            },
        };
        let fleet = StatsSnapshot {
            requests: 12,
            shards: Some(vec![shard("shard-0", 7, true), shard("shard-1", 5, false)]),
            ..StatsSnapshot::default()
        };
        let text = serde_json::to_string(&fleet).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&text).unwrap();
        let shards = back.shards.as_ref().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].name, "shard-0");
        assert!(shards[0].healthy && !shards[1].healthy);
        assert_eq!(shards[1].snapshot.requests, 5);
        assert_eq!(shards[0].breaker.as_ref().unwrap().state, "closed");
        assert_eq!(shards[0].breaker.as_ref().unwrap().trips, 0);

        // Merging fleets concatenates the shard lists; merging a fleet
        // with a plain service keeps the fleet's list.
        let other = StatsSnapshot {
            requests: 3,
            shards: Some(vec![shard("shard-2", 3, true)]),
            ..StatsSnapshot::default()
        };
        let m = fleet.merge(&other);
        assert_eq!(m.requests, 15);
        assert_eq!(m.shards.as_ref().unwrap().len(), 3);
        let m2 = fleet.merge(&StatsSnapshot::default());
        assert_eq!(m2.shards.as_ref().unwrap().len(), 2);
        assert!(StatsSnapshot::default()
            .merge(&StatsSnapshot::default())
            .shards
            .is_none());
    }
}
