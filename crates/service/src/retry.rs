//! Client-side retry policy: capped exponential backoff with
//! deterministic jitter.
//!
//! Factorization requests are idempotent — the same matrix factors to
//! the same `L` — so a client that loses its connection (or times out
//! waiting) can safely reconnect and resubmit every request it never got
//! a reply for. The reply for a lost connection died with that
//! connection's writer, so the resubmission produces exactly one reply
//! on the new connection and the exactly-one-reply invariant holds
//! end to end.
//!
//! Jitter is derived from a seed, not the OS RNG, so a chaos run's
//! backoff schedule is reproducible: same seed, same sleeps.

use std::time::Duration;

/// Backoff parameters for reconnect/resubmit loops.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Consecutive failed recovery attempts tolerated before giving up.
    /// `1` disables retry: the first connection failure is final.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base: Duration,
    /// Upper bound the exponential is clamped to.
    pub cap: Duration,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: fail on the first connection error.
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
            seed: 0,
        }
    }

    /// The default chaos/loadgen policy: up to 8 attempts, 2 ms base,
    /// 250 ms cap.
    pub fn standard(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(250),
            seed,
        }
    }

    /// The router→shard reconnect policy: effectively unlimited attempts
    /// (whether a shard is gone for good is the fleet supervisor's call,
    /// not the connection's), 1 ms base, 100 ms cap. The same equal-jitter
    /// schedule as [`RetryPolicy::standard`], so shard-side and
    /// loadgen-side reconnects share one tested backoff implementation —
    /// a `TcpShard` *gates* reconnect attempts on this schedule instead
    /// of sleeping, keeping its submit path non-blocking.
    pub fn reconnect(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: u32::MAX,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            seed,
        }
    }

    /// `true` when reconnecting is allowed at all.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The sleep before retry number `attempt` (1-based): equal-jitter
    /// exponential backoff, `exp/2 + uniform(0, exp/2)` where
    /// `exp = min(cap, base · 2^(attempt-1))`. Deterministic in
    /// `(seed, attempt)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(24);
        let exp = self
            .base
            .saturating_mul(1u32 << shift)
            .min(self.cap)
            .max(Duration::from_micros(1));
        let mut x = self.seed ^ (u64::from(attempt)).wrapping_mul(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        let half = exp / 2;
        // Jitter stays in u64 nanoseconds: a cap above ~4.29 s makes
        // `half` exceed `u32::MAX` ns, and narrowing here would wrap the
        // modulus and skew the distribution toward the low end.
        let jitter_ns = x % (half.as_nanos().max(1) as u64);
        half + Duration::from_nanos(jitter_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy::standard(7);
        // The deterministic floor (exp/2) doubles per attempt until the
        // cap halves it at 125 ms.
        for attempt in 1..=12u32 {
            let d = p.backoff(attempt);
            let exp = p.base.saturating_mul(1 << (attempt - 1)).min(p.cap);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} < {:?}", exp / 2);
            assert!(d <= exp, "attempt {attempt}: {d:?} > {exp:?}");
        }
        assert!(p.backoff(100) <= p.cap, "late attempts stay capped");

        // Multi-second cap: `half` is 10 s, far above u32::MAX ns. The
        // old u32 narrowing kept every jitter below ~4.29 s; computed in
        // u64 the jitter must range across the full (0, half) interval.
        let slow = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_secs(1),
            cap: Duration::from_secs(20),
            seed: 0,
        };
        let half = slow.cap / 2;
        let mut max_jitter = Duration::ZERO;
        for seed in 0..64u64 {
            let p = RetryPolicy {
                seed,
                ..slow.clone()
            };
            for attempt in 6..=9u32 {
                let d = p.backoff(attempt);
                assert!(d >= half, "attempt {attempt}: {d:?} < {half:?}");
                assert!(d <= slow.cap, "attempt {attempt}: {d:?} > {:?}", slow.cap);
                max_jitter = max_jitter.max(d - half);
            }
        }
        assert!(
            max_jitter > Duration::from_nanos(u64::from(u32::MAX)),
            "jitter never exceeded the u32 range ({max_jitter:?}); \
             the modulus is being narrowed"
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let a = RetryPolicy::standard(1);
        let b = RetryPolicy::standard(1);
        let c = RetryPolicy::standard(2);
        let seq = |p: &RetryPolicy| (1..=8).map(|i| p.backoff(i)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b));
        assert_ne!(seq(&a), seq(&c), "different seeds, different jitter");
    }

    #[test]
    fn disabled_policy_permits_no_retry() {
        let p = RetryPolicy::disabled();
        assert!(!p.enabled());
        assert!(RetryPolicy::standard(0).enabled());
    }

    #[test]
    fn reconnect_policy_is_unbounded_and_capped() {
        let p = RetryPolicy::reconnect(9);
        assert!(p.enabled());
        for attempt in 1..=64u32 {
            let d = p.backoff(attempt);
            assert!(d >= p.base / 2, "attempt {attempt}: {d:?}");
            assert!(d <= p.cap, "attempt {attempt}: {d:?}");
        }
        // Deep into the schedule the sleep sits in [cap/2, cap]: a dead
        // shard is probed forever, but never more than ~10×/second.
        assert!(p.backoff(10_000) >= p.cap / 2);
    }
}
