//! Property tests for the fused (zero-copy) ingest path: for any mix of
//! payloads, dtypes, plan layouts, and ragged tails, the fused
//! scatter-once path must produce a **bitwise-identical** packed buffer
//! to the legacy stage-then-`pack_batch_host` path — and factorizing
//! either buffer must route per-matrix failures to exactly the same
//! request ids.

use ibcf_core::lane_batch::{LaneOrder, LaneWidth};
use ibcf_core::spd::{random_spd, SpdKind};
use ibcf_core::{factorize_batch_auto_backend, LaneBackend};
use ibcf_layout::{BatchLayout, LayoutKind, BUFFER_ALIGN};
use ibcf_service::former::{form_batch_mode, IngestMode, PackedData};
use ibcf_service::request::{Payload, Pending, ReplySink};
use ibcf_service::{Dtype, EnginePlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Instant;

fn plan_of(
    kind_pick: usize,
    chunk_pick: usize,
    order_pick: usize,
    width_pick: usize,
) -> EnginePlan {
    EnginePlan {
        kind: [LayoutKind::Interleaved, LayoutKind::Chunked][kind_pick % 2],
        chunk: [32, 64, 128][chunk_pick % 3],
        order: LaneOrder::ALL[order_pick % 2],
        width: [
            LaneWidth::Auto,
            LaneWidth::W8,
            LaneWidth::W16,
            LaneWidth::W32,
        ][width_pick % 4],
        backend: LaneBackend::Auto,
    }
}

/// `count` requests of dimension `n`; indices in `bad` carry a planted
/// indefinite matrix (−I), everyone else a random SPD one.
fn requests_f32(n: usize, count: usize, bad: &BTreeSet<usize>, seed: u64) -> Vec<Pending> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let m = if bad.contains(&i) {
                (0..n * n)
                    .map(|e| if e % (n + 1) == 0 { -1.0 } else { 0.0 })
                    .collect()
            } else {
                random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec()
            };
            Pending {
                id: 1000 + i as u64,
                n,
                payload: Payload::F32(m),
                enqueued: Instant::now(),
                deadline: None,
                sink: ReplySink::boxed(|_| {}),
            }
        })
        .collect()
}

fn requests_f64(n: usize, count: usize, bad: &BTreeSet<usize>, seed: u64) -> Vec<Pending> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let m = if bad.contains(&i) {
                (0..n * n)
                    .map(|e| if e % (n + 1) == 0 { -1.0 } else { 0.0 })
                    .collect()
            } else {
                random_spd::<f64>(n, SpdKind::Wishart, &mut rng).into_vec()
            };
            Pending {
                id: 1000 + i as u64,
                n,
                payload: Payload::F64(m),
                enqueued: Instant::now(),
                deadline: None,
                sink: ReplySink::boxed(|_| {}),
            }
        })
        .collect()
}

fn params() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize, u64)> {
    (
        1usize..=12,  // n
        1usize..=80,  // count (ragged tails almost always)
        0usize..2,    // layout kind pick
        0usize..3,    // chunk pick
        0usize..2,    // order pick
        0usize..4,    // width pick
        any::<u64>(), // seed
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fused and staged ingest produce bitwise-identical packed buffers —
    /// same layout, same slot count, same bits in every element including
    /// identity padding and the layout's own padding — for both dtypes.
    #[test]
    fn fused_ingest_is_bitwise_identical_to_staged(
        (n, count, k, c, o, w, seed) in params(),
        f64_pick in any::<bool>(),
    ) {
        let plan = plan_of(k, c, o, w);
        let bad = BTreeSet::new();
        let (fused, staged) = if f64_pick {
            (
                form_batch_mode(n, Dtype::F64, requests_f64(n, count, &bad, seed), plan, IngestMode::Fused),
                form_batch_mode(n, Dtype::F64, requests_f64(n, count, &bad, seed), plan, IngestMode::Staged),
            )
        } else {
            (
                form_batch_mode(n, Dtype::F32, requests_f32(n, count, &bad, seed), plan, IngestMode::Fused),
                form_batch_mode(n, Dtype::F32, requests_f32(n, count, &bad, seed), plan, IngestMode::Staged),
            )
        };
        prop_assert_eq!(fused.slots, staged.slots);
        prop_assert_eq!(fused.layout.kind(), staged.layout.kind());
        match (&fused.data, &staged.data) {
            (PackedData::F32(a), PackedData::F32(b)) => {
                prop_assert_eq!(a.len(), b.len());
                prop_assert_eq!(a.as_slice().as_ptr() as usize % BUFFER_ALIGN, 0);
                for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "n={} count={} elem {}: {} vs {}", n, count, i, x, y
                    );
                }
            }
            (PackedData::F64(a), PackedData::F64(b)) => {
                prop_assert_eq!(a.len(), b.len());
                prop_assert_eq!(a.as_slice().as_ptr() as usize % BUFFER_ALIGN, 0);
                for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "n={} count={} elem {}: {} vs {}", n, count, i, x, y
                    );
                }
            }
            _ => prop_assert!(false, "dtype mismatch between modes"),
        }
    }

    /// Factorizing a fused-ingested batch reports failures on exactly the
    /// same request ids as factorizing the staged one — planted non-SPD
    /// payloads route identically through either pack path, and padding
    /// slots never fail.
    #[test]
    fn fused_ingest_routes_failures_identically(
        (n, count, k, c, o, w, seed) in params(),
        bad_mask in any::<u64>(),
    ) {
        let plan = plan_of(k, c, o, w);
        // Up to 8 planted failures at pseudo-random request indices.
        let bad: BTreeSet<usize> = (0..8)
            .map(|i| (bad_mask.rotate_left(8 * i) & 0xff) as usize % count)
            .take_while(|_| bad_mask != 0)
            .collect();
        let mut failed_ids: Vec<Vec<u64>> = Vec::new();
        for mode in [IngestMode::Fused, IngestMode::Staged] {
            let batch = form_batch_mode(
                n, Dtype::F32, requests_f32(n, count, &bad, seed), plan, mode,
            );
            let mut data = match batch.data {
                PackedData::F32(v) => v,
                _ => unreachable!(),
            };
            let report = factorize_batch_auto_backend(
                &batch.layout,
                data.as_mut_slice(),
                plan.order,
                plan.width,
                plan.backend,
            );
            // Map failed matrix slots onto request ids, exactly as the
            // worker's reply routing does.
            let mut ids: Vec<u64> = Vec::new();
            for &(mat, _) in &report.failures {
                prop_assert!(mat < batch.reqs.len(), "padding slot {} failed", mat);
                ids.push(batch.reqs[mat].id);
            }
            failed_ids.push(ids);
        }
        prop_assert_eq!(&failed_ids[0], &failed_ids[1]);
        let want: Vec<u64> = bad.iter().map(|&i| 1000 + i as u64).collect();
        prop_assert_eq!(&failed_ids[0], &want);
    }
}
