//! Property tests for the wire codec: arbitrary, truncated, and mutated
//! byte bodies must never panic a decoder — every failure surfaces as a
//! typed [`FrameError`] — and the backpressure reply frame keeps its
//! retry-after hint intact under round-trip while rejecting any stray
//! trailing elements.

use ibcf_service::codec::{
    decode_factor_reply, decode_factor_req, encode_factor_reply, read_frame,
};
use ibcf_service::{Dtype, FactorReply, FrameError, Outcome, RejectReason};
use proptest::prelude::*;
use std::io::Cursor;

fn backpressure_body(id: u64, retry_after_us: u32) -> Vec<u8> {
    encode_factor_reply(
        &FactorReply {
            id,
            outcome: Outcome::Rejected(RejectReason::Backpressure { retry_after_us }),
        },
        Dtype::F32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes into the request decoder: any outcome is fine as
    /// long as it is a typed result, never a panic.
    #[test]
    fn decode_factor_req_never_panics(body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_factor_req(&body);
    }

    /// Arbitrary bytes into the reply decoder, covering the status-5
    /// backpressure arm via arbitrary status bytes.
    #[test]
    fn decode_factor_reply_never_panics(body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_factor_reply(&body);
    }

    /// Arbitrary streams into the framer: a random length prefix may
    /// promise far more than the stream holds — that must come back as
    /// a typed torn/malformed error, not a panic or a hang.
    #[test]
    fn read_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_frame(&mut Cursor::new(bytes));
    }

    /// A well-formed backpressure reply survives the round trip with its
    /// hint intact; every strict prefix of it is a typed error (the
    /// header is fixed-size, so no truncation can masquerade as valid);
    /// and any trailing bytes are rejected — a failure reply must not
    /// smuggle elements.
    #[test]
    fn backpressure_frame_roundtrips_and_rejects_damage(
        id in any::<u64>(),
        hint in any::<u32>(),
        extra in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let body = backpressure_body(id, hint);
        let reply = decode_factor_reply(&body).expect("valid frame must decode");
        prop_assert_eq!(reply.id, id);
        prop_assert_eq!(
            reply.outcome,
            Outcome::Rejected(RejectReason::Backpressure { retry_after_us: hint })
        );

        for cut in 0..body.len() {
            prop_assert!(
                decode_factor_reply(&body[..cut]).is_err(),
                "truncation to {} bytes decoded", cut
            );
        }

        let mut padded = body;
        padded.extend_from_slice(&extra);
        prop_assert!(
            matches!(decode_factor_reply(&padded), Err(FrameError::Malformed(_))),
            "backpressure reply with trailing elements must be malformed"
        );
    }

    /// Flipping one byte anywhere in a valid backpressure frame must
    /// never panic the decoder: it either still decodes to some typed
    /// reply or fails with a typed error.
    #[test]
    fn mutated_backpressure_frame_never_panics(
        id in any::<u64>(),
        hint in any::<u32>(),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut body = backpressure_body(id, hint);
        let i = (pos as usize) % body.len();
        body[i] ^= flip;
        let _ = decode_factor_reply(&body);
    }

    /// A valid request frame truncated mid-stream comes back torn or
    /// malformed through the framer, never a panic.
    #[test]
    fn truncated_request_stream_is_a_typed_error(
        id in any::<u64>(),
        n in 1usize..8,
        cut_pick in any::<u64>(),
    ) {
        use ibcf_service::codec::{encode_factor_req, write_frame, K_FACTOR_REQ};
        use ibcf_service::Payload;

        let payload = Payload::F32(vec![1.0; n * n]);
        let body = encode_factor_req(id, n, 0, &payload);
        let mut wire = Vec::new();
        write_frame(&mut wire, K_FACTOR_REQ, &body).unwrap();
        // Cut strictly inside the frame (keep at least nothing, lose at
        // least one byte) so the stream always ends mid-frame.
        let cut = (cut_pick as usize) % wire.len();
        match read_frame(&mut Cursor::new(&wire[..cut])) {
            Ok(None) => prop_assert!(cut < 4, "clean EOF only before the length word"),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded whole"),
            Err(FrameError::Torn { .. }) | Err(FrameError::Malformed(_)) => {}
            Err(FrameError::Io(e)) => {
                prop_assert!(false, "unexpected io error from a cursor: {e}");
            }
        }
    }
}
