//! Property tests for rendezvous-hash stability under shard-set churn.
//!
//! The failover story leans on one property of highest-random-weight
//! hashing: when a shard dies, *only* the keys it owned move (to their
//! second choice), and when it comes back, every key returns to its
//! original owner. Batch formers on surviving shards keep seeing
//! exactly the traffic they always saw — no global reshuffle, no
//! thundering rebalance after a respawn.

use ibcf_service::router::{rendezvous_owner, slot_salt};
use proptest::prelude::*;

/// Every `(n, dtype)` key the routing tier distinguishes, bounded to a
/// representative sweep.
fn keys() -> impl Iterator<Item = (usize, u8)> {
    (1usize..=64).flat_map(|n| [(n, 0u8), (n, 1u8)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn removing_one_shard_moves_only_its_keys(k in 2usize..=8, victim_off in 0usize..8) {
        let victim = victim_off % k;
        let salts: Vec<u64> = (0..k).map(slot_salt).collect();
        let full = vec![true; k];
        let mut degraded = full.clone();
        degraded[victim] = false;
        for (n, tag) in keys() {
            let before = rendezvous_owner(n, tag, &salts, &full).unwrap();
            let after = rendezvous_owner(n, tag, &salts, &degraded).unwrap();
            prop_assert!(after != victim, "a key landed on the dead shard");
            if before != victim {
                // A surviving shard's keys must not move at all.
                prop_assert_eq!(after, before);
            }
        }
    }

    #[test]
    fn readding_the_shard_restores_the_original_assignment(
        k in 2usize..=8,
        victim_off in 0usize..8,
    ) {
        let victim = victim_off % k;
        let salts: Vec<u64> = (0..k).map(slot_salt).collect();
        let full = vec![true; k];
        let mut degraded = full.clone();
        degraded[victim] = false;
        for (n, tag) in keys() {
            let original = rendezvous_owner(n, tag, &salts, &full).unwrap();
            // Ownership is a pure function of (key, healthy set): after
            // the victim's keys spent time elsewhere, readmission sends
            // every one of them straight home — no sticky rebalancing,
            // no history dependence.
            let _ = rendezvous_owner(n, tag, &salts, &degraded);
            let restored = rendezvous_owner(n, tag, &salts, &full).unwrap();
            prop_assert_eq!(restored, original);
        }
    }

    #[test]
    fn every_key_has_an_owner_iff_any_shard_is_healthy(
        k in 1usize..=8,
        mask in 0u8..=255,
    ) {
        let salts: Vec<u64> = (0..k).map(slot_salt).collect();
        let healthy: Vec<bool> = (0..k).map(|i| mask & (1 << i) != 0).collect();
        let any = healthy.iter().any(|&h| h);
        for (n, tag) in keys() {
            let owner = rendezvous_owner(n, tag, &salts, &healthy);
            prop_assert_eq!(owner.is_some(), any);
            if let Some(o) = owner {
                prop_assert!(healthy[o], "owner must be a healthy shard");
            }
        }
    }
}
