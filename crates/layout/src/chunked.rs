//! The chunked interleaved layout (Figure 8 of the paper).

use crate::traits::{BatchLayout, LayoutKind};
use crate::util::{align_up, WARP_SIZE};
use serde::{Deserialize, Serialize};

/// Interleaving restricted to chunks of `chunk` matrices.
///
/// Matrices are grouped into chunks of `chunk` (a multiple of the warp
/// size). Each chunk occupies a contiguous region of `lda * n * chunk`
/// elements, interleaved internally exactly like [`Interleaved`]
/// (crate::Interleaved) with the chunk playing the role of the batch:
///
/// ```text
/// addr(m, i, j) = (m / chunk) * lda * n * chunk     // chunk base
///               + (j * lda + i) * chunk              // element plane
///               + (m % chunk)                        // lane within chunk
/// ```
///
/// Reads stay perfectly coalesced, while the elements of one matrix now
/// live within a contiguous `lda * n * chunk`-element window — for
/// `n = 24, chunk = 64` that is 144 KiB instead of being smeared across the
/// whole 36 MiB batch. The paper finds this spatial locality worth ~2× in
/// sustained bandwidth, and also uses the chunk size as the thread-block
/// size of the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunked {
    n: usize,
    lda: usize,
    batch: usize,
    padded: usize,
    chunk: usize,
}

impl Chunked {
    /// A chunked layout with `lda == n`; the batch is padded to a multiple
    /// of the chunk size.
    ///
    /// # Panics
    /// If `chunk` is zero or not a multiple of the warp size (32).
    pub fn new(n: usize, batch: usize, chunk: usize) -> Self {
        Self::with_lda(n, n, batch, chunk)
    }

    /// A chunked layout with an explicit leading dimension.
    ///
    /// # Panics
    /// If `n == 0`, `lda < n`, `batch == 0`, or `chunk` is zero or not a
    /// multiple of the warp size (32).
    pub fn with_lda(n: usize, lda: usize, batch: usize, chunk: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        assert!(lda >= n, "leading dimension must be >= n");
        assert!(batch > 0, "batch must be positive");
        assert!(
            chunk > 0 && chunk.is_multiple_of(WARP_SIZE),
            "chunk size must be a positive multiple of the warp size"
        );
        let padded = align_up(batch, chunk);
        Self {
            n,
            lda,
            batch,
            padded,
            chunk,
        }
    }

    /// Number of matrices per chunk.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Number of chunks in the padded batch.
    pub fn num_chunks(&self) -> usize {
        self.padded / self.chunk
    }

    /// Element length of one chunk's contiguous region.
    pub fn chunk_len(&self) -> usize {
        self.lda * self.n * self.chunk
    }
}

impl BatchLayout for Chunked {
    fn n(&self) -> usize {
        self.n
    }

    fn lda(&self) -> usize {
        self.lda
    }

    fn batch(&self) -> usize {
        self.batch
    }

    fn padded_batch(&self) -> usize {
        self.padded
    }

    fn len(&self) -> usize {
        self.num_chunks() * self.chunk_len()
    }

    #[inline]
    fn addr(&self, mat: usize, row: usize, col: usize) -> usize {
        debug_assert!(mat < self.padded && row < self.lda && col < self.n);
        let chunk_idx = mat / self.chunk;
        let lane = mat % self.chunk;
        chunk_idx * self.chunk_len() + (col * self.lda + row) * self.chunk + lane
    }

    fn lane_stride(&self) -> usize {
        1
    }

    fn kind(&self) -> LayoutKind {
        LayoutKind::Chunked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_of_warp_size_matches_paper_stencil() {
        // The paper's load_full walks `dAp += 32` between rows and
        // `dAp += (N - NB) * 32` between columns for chunk 32; our addr()
        // must agree with that pointer arithmetic.
        let n = 8;
        let l = Chunked::new(n, 32, 32);
        let base = l.addr(5, 0, 0); // thread 5's dA
        assert_eq!(base, 5);
        for j in 0..n {
            for i in 0..n {
                assert_eq!(l.addr(5, i, j), base + (j * n + i) * 32);
            }
        }
    }

    #[test]
    fn chunks_are_contiguous_blocks() {
        let l = Chunked::new(4, 256, 64);
        assert_eq!(l.chunk_len(), 16 * 64);
        assert_eq!(l.num_chunks(), 4);
        // First element of chunk 1 starts right after chunk 0's region.
        assert_eq!(l.addr(64, 0, 0), 16 * 64);
        // Last element of chunk 0 is the final lane of the (3,3) plane.
        assert_eq!(l.addr(63, 3, 3), 15 * 64 + 63);
    }

    #[test]
    fn pads_to_chunk_multiple() {
        let l = Chunked::new(3, 100, 64);
        assert_eq!(l.padded_batch(), 128);
        assert_eq!(l.len(), 2 * 9 * 64);
    }

    #[test]
    fn chunk_equal_to_padded_batch_matches_interleaved() {
        use crate::Interleaved;
        let n = 5;
        let batch = 96;
        let c = Chunked::new(n, batch, 96);
        let i = Interleaved::new(n, batch);
        assert_eq!(c.len(), i.len());
        for m in 0..batch {
            for col in 0..n {
                for row in 0..n {
                    assert_eq!(c.addr(m, row, col), i.addr(m, row, col));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the warp size")]
    fn rejects_non_warp_chunk() {
        let _ = Chunked::new(4, 64, 48);
    }
}
