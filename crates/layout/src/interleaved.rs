//! The simple interleaved layout: batch index fastest (Figure 7 of the paper).

use crate::traits::{BatchLayout, LayoutKind};
use crate::util::{align_up, WARP_SIZE};
use serde::{Deserialize, Serialize};

/// Fully interleaved batch: consecutive memory locations hold the element
/// with the same (row, col) index of consecutive matrices.
///
/// Element `(i, j)` of matrix `m` lives at `(j * lda + i) * padded_batch + m`.
/// The batch is padded up to a multiple of the warp size so that, as long as
/// the buffer is 128-byte aligned, every warp-wide access of one element
/// across 32 consecutive matrices touches exactly one 128-byte line —
/// perfect coalescing regardless of `n`.
///
/// The subtle downside (the paper's §II-B) is that the elements of a single
/// matrix are spread `padded_batch` elements apart: for a batch of 16,384
/// single-precision matrices that is a 64 KiB stride between consecutive
/// elements, defeating any spatial locality in the memory system. The
/// [`Chunked`](crate::Chunked) layout fixes this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interleaved {
    n: usize,
    lda: usize,
    batch: usize,
    padded: usize,
}

impl Interleaved {
    /// An interleaved layout with `lda == n`; the batch is padded to a
    /// multiple of the warp size (32).
    pub fn new(n: usize, batch: usize) -> Self {
        Self::with_lda(n, n, batch)
    }

    /// An interleaved layout with an explicit leading dimension.
    ///
    /// # Panics
    /// If `n == 0`, `lda < n`, or `batch == 0`.
    pub fn with_lda(n: usize, lda: usize, batch: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        assert!(lda >= n, "leading dimension must be >= n");
        assert!(batch > 0, "batch must be positive");
        let padded = align_up(batch, WARP_SIZE);
        Self {
            n,
            lda,
            batch,
            padded,
        }
    }
}

impl BatchLayout for Interleaved {
    fn n(&self) -> usize {
        self.n
    }

    fn lda(&self) -> usize {
        self.lda
    }

    fn batch(&self) -> usize {
        self.batch
    }

    fn padded_batch(&self) -> usize {
        self.padded
    }

    fn len(&self) -> usize {
        self.lda * self.n * self.padded
    }

    #[inline]
    fn addr(&self, mat: usize, row: usize, col: usize) -> usize {
        debug_assert!(mat < self.padded && row < self.lda && col < self.n);
        (col * self.lda + row) * self.padded + mat
    }

    fn lane_stride(&self) -> usize {
        1
    }

    fn kind(&self) -> LayoutKind {
        LayoutKind::Interleaved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_index_is_fastest() {
        let l = Interleaved::new(4, 64);
        assert_eq!(l.addr(0, 0, 0), 0);
        assert_eq!(l.addr(1, 0, 0), 1);
        assert_eq!(l.addr(63, 0, 0), 63);
        // Next element starts after the whole batch's copy of element (0,0).
        assert_eq!(l.addr(0, 1, 0), 64);
        assert_eq!(l.addr(0, 0, 1), 4 * 64);
    }

    #[test]
    fn pads_batch_to_warp_multiple() {
        let l = Interleaved::new(3, 33);
        assert_eq!(l.batch(), 33);
        assert_eq!(l.padded_batch(), 64);
        assert_eq!(l.len(), 9 * 64);
        // Already aligned batches are untouched.
        let l = Interleaved::new(3, 64);
        assert_eq!(l.padded_batch(), 64);
    }

    #[test]
    fn adjacent_lanes_are_adjacent_in_memory() {
        let l = Interleaved::new(7, 96);
        for m in 0..95 {
            assert_eq!(l.addr(m + 1, 3, 2), l.addr(m, 3, 2) + 1);
        }
        assert_eq!(l.lane_stride(), 1);
    }

    #[test]
    fn respects_lda() {
        let l = Interleaved::with_lda(3, 4, 32);
        assert_eq!(l.addr(0, 0, 1), 4 * 32);
        assert_eq!(l.len(), 12 * 32);
    }
}
