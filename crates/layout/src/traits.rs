//! The [`BatchLayout`] trait: a bijection between logical batch elements and
//! physical buffer addresses.

use serde::{Deserialize, Serialize};

/// Discriminates the three layout families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayoutKind {
    /// Contiguous column-major matrices, one after another.
    Canonical,
    /// Batch index fastest; one big interleave over the whole (padded) batch.
    Interleaved,
    /// Interleaved within fixed-size chunks of matrices.
    Chunked,
}

impl LayoutKind {
    /// `true` for the two interleaved families.
    pub fn is_interleaved(self) -> bool {
        matches!(self, LayoutKind::Interleaved | LayoutKind::Chunked)
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::Canonical => "canonical",
            LayoutKind::Interleaved => "interleaved",
            LayoutKind::Chunked => "chunked",
        }
    }
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps (matrix, row, col) triples of a batch of `n × n` matrices to element
/// offsets within a single flat buffer.
///
/// Implementations must guarantee that `addr` is injective over the domain
/// `mat < padded_batch(), row < lda(), col < n()` and that every address is
/// `< len()`. The layout stores the **full square** (`lda × n` elements per
/// matrix); triangular kernels simply never touch the strictly-upper part,
/// exactly like the CUDA kernels in the paper.
pub trait BatchLayout {
    /// Matrix dimension (matrices are `n × n`).
    fn n(&self) -> usize;

    /// Leading dimension (row stride of a column), `>= n`.
    fn lda(&self) -> usize;

    /// Logical number of matrices in the batch.
    fn batch(&self) -> usize;

    /// Number of matrix slots physically allocated (the batch padded up to
    /// the interleave granularity). `>= batch()`.
    fn padded_batch(&self) -> usize;

    /// Required buffer length in elements.
    fn len(&self) -> usize;

    /// Element offset of element (`row`, `col`) of matrix `mat`.
    fn addr(&self, mat: usize, row: usize, col: usize) -> usize;

    /// Distance in elements between the same (row, col) element of two
    /// matrices adjacent within an interleave group. This is the stride
    /// between the addresses touched by adjacent lanes of a warp: `1` for
    /// the interleaved layouts (perfect coalescing), the full per-matrix
    /// footprint for the canonical layout.
    fn lane_stride(&self) -> usize;

    /// Which family this layout belongs to.
    fn kind(&self) -> LayoutKind;

    /// `true` if the buffer holds no elements (degenerate empty batch).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
