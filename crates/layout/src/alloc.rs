//! 128-byte-aligned batch buffers.
//!
//! The coalescing story of the interleaved layouts assumes the batch
//! buffer starts on a 128-byte boundary: a warp's 32 consecutive lanes of
//! one `f32` element plane then fall into exactly one 128-byte memory
//! transaction (see [`Interleaved`](crate::Interleaved)). On the host the
//! same boundary is what keeps a lane group's `[T; LANES]` block inside
//! whole cache lines, so SIMD loads of a block never split across lines.
//! `Vec` only guarantees the element type's own alignment; this module
//! provides the stronger guarantee.
//!
//! This is the one corner of the crate that needs `unsafe` (raw
//! allocation); everything else remains `#![deny(unsafe_code)]`-clean.
#![allow(unsafe_code)]

use crate::traits::BatchLayout;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout as AllocLayout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment, in bytes, of every buffer this module hands out: one full
/// 128-byte memory transaction / two 64-byte cache lines.
pub const BUFFER_ALIGN: usize = 128;

/// A fixed-length heap buffer of `T` whose base address is aligned to
/// [`BUFFER_ALIGN`] bytes. Dereferences to `[T]`, so it drops into every
/// API that takes a slice.
pub struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: `AlignedVec` uniquely owns its allocation, exactly like `Vec`.
unsafe impl<T: Send> Send for AlignedVec<T> {}
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T: Copy + Default> AlignedVec<T> {
    /// Allocates `len` elements, each initialized to `T::default()`.
    ///
    /// # Panics
    /// If the allocation size overflows `isize`.
    pub fn new(len: usize) -> Self {
        if len == 0 {
            // No allocation: a well-aligned dangling pointer, never read.
            let ptr = NonNull::new(BUFFER_ALIGN as *mut T).expect("non-null");
            return AlignedVec { ptr, len };
        }
        let layout = Self::alloc_layout(len);
        // SAFETY: `layout` has non-zero size.
        let raw = unsafe { alloc(layout) } as *mut T;
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        for i in 0..len {
            // SAFETY: `i < len` elements fit the allocation just made.
            unsafe { ptr.as_ptr().add(i).write(T::default()) };
        }
        AlignedVec { ptr, len }
    }

    fn alloc_layout(len: usize) -> AllocLayout {
        let bytes = std::mem::size_of::<T>()
            .checked_mul(len)
            .expect("allocation size overflow");
        let align = BUFFER_ALIGN.max(std::mem::align_of::<T>());
        AllocLayout::from_size_align(bytes, align).expect("allocation size overflow")
    }
}

impl<T> AlignedVec<T> {
    /// Number of elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer as a shared slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `ptr` points at `len` initialized elements.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The buffer as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as above, and we hold `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        let bytes = std::mem::size_of::<T>() * self.len;
        let align = BUFFER_ALIGN.max(std::mem::align_of::<T>());
        let layout = AllocLayout::from_size_align(bytes, align).expect("valid at alloc time");
        // SAFETY: allocated in `new` with this exact layout; `T: Copy`
        // buffers need no element drops.
        unsafe { dealloc(self.ptr.as_ptr() as *mut u8, layout) };
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        let mut out = AlignedVec::new(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("align", &BUFFER_ALIGN)
            .finish()
    }
}

/// Allocates a zero-initialized, 128-byte-aligned buffer of `len`
/// elements.
pub fn alloc_aligned<T: Copy + Default>(len: usize) -> AlignedVec<T> {
    AlignedVec::new(len)
}

/// Allocates a 128-byte-aligned buffer sized for `layout` — the
/// recommended way to materialize any batch the layouts describe.
pub fn alloc_batch<T: Copy + Default, L: BatchLayout>(layout: &L) -> AlignedVec<T> {
    AlignedVec::new(layout.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chunked, Interleaved, WARP_SIZE};

    #[test]
    fn buffers_are_128_byte_aligned() {
        for len in [1usize, 3, 100, 4096, 100_000] {
            let f = alloc_aligned::<f32>(len);
            assert_eq!(f.as_slice().as_ptr() as usize % BUFFER_ALIGN, 0);
            assert_eq!(f.len(), len);
            assert!(f.iter().all(|&x| x == 0.0));
            let d = alloc_aligned::<f64>(len);
            assert_eq!(d.as_slice().as_ptr() as usize % BUFFER_ALIGN, 0);
        }
    }

    #[test]
    fn zero_length_is_fine() {
        let v = alloc_aligned::<f64>(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f64]);
        let _ = v.clone();
    }

    #[test]
    fn clone_copies_contents() {
        let mut v = alloc_aligned::<f32>(64);
        for (i, x) in v.iter_mut().enumerate() {
            *x = i as f32;
        }
        let c = v.clone();
        assert_eq!(c.as_slice(), v.as_slice());
        assert_eq!(c.as_ptr() as usize % BUFFER_ALIGN, 0);
    }

    /// The promise the coalescing docs make: with a 128-byte-aligned base,
    /// every warp-wide access of one element plane across 32 consecutive
    /// matrices of an interleaved batch touches exactly one 128-byte line
    /// (f32) — the byte address of each warp's first lane is a multiple of
    /// `32 * size_of::<f32>() = 128`.
    #[test]
    fn interleaved_warp_blocks_start_on_transaction_boundaries() {
        let n = 5;
        let batch = 96;
        let il = Interleaved::new(n, batch);
        let buf = alloc_batch::<f32, _>(&il);
        let base = buf.as_ptr() as usize;
        assert_eq!(base % BUFFER_ALIGN, 0);
        for mat0 in (0..il.padded_batch()).step_by(WARP_SIZE) {
            for col in 0..n {
                for row in 0..n {
                    let byte = base + il.addr(mat0, row, col) * std::mem::size_of::<f32>();
                    assert_eq!(byte % BUFFER_ALIGN, 0, "mat0={mat0} ({row},{col})");
                }
            }
        }
        // Chunked interleaving keeps the same property inside each chunk.
        let ch = Chunked::new(n, batch, 64);
        let buf = alloc_batch::<f32, _>(&ch);
        let base = buf.as_ptr() as usize;
        for mat0 in (0..ch.padded_batch()).step_by(WARP_SIZE) {
            let byte = base + ch.addr(mat0, 0, 0) * std::mem::size_of::<f32>();
            assert_eq!(byte % BUFFER_ALIGN, 0, "mat0={mat0}");
        }
    }
}
