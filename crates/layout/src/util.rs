//! Small shared helpers for layout arithmetic.

/// Number of threads in a warp; the minimum interleave granularity.
pub const WARP_SIZE: usize = 32;

/// Rounds `x` up to the next multiple of `to` (`to > 0`).
///
/// ```
/// # use ibcf_layout::align_up;
/// assert_eq!(align_up(0, 32), 0);
/// assert_eq!(align_up(1, 32), 32);
/// assert_eq!(align_up(32, 32), 32);
/// assert_eq!(align_up(33, 32), 64);
/// ```
pub fn align_up(x: usize, to: usize) -> usize {
    assert!(to > 0, "alignment must be positive");
    x.div_ceil(to) * to
}

/// `true` if `x` is a positive multiple of the warp size.
pub fn is_multiple_of_warp(x: usize) -> bool {
    x > 0 && x.is_multiple_of(WARP_SIZE)
}

/// The `n`-th triangular number: the element count of an `n × n` lower
/// triangle (diagonal included).
pub fn tri(n: usize) -> usize {
    n * (n + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 4), 0);
        assert_eq!(align_up(3, 4), 4);
        assert_eq!(align_up(4, 4), 4);
        assert_eq!(align_up(5, 4), 8);
        assert_eq!(align_up(127, 128), 128);
    }

    #[test]
    #[should_panic(expected = "alignment must be positive")]
    fn align_up_zero_alignment_panics() {
        let _ = align_up(1, 0);
    }

    #[test]
    fn warp_multiples() {
        assert!(is_multiple_of_warp(32));
        assert!(is_multiple_of_warp(512));
        assert!(!is_multiple_of_warp(0));
        assert!(!is_multiple_of_warp(33));
        assert!(!is_multiple_of_warp(31));
    }

    #[test]
    fn triangular_numbers() {
        assert_eq!(tri(0), 0);
        assert_eq!(tri(1), 1);
        assert_eq!(tri(4), 10);
        assert_eq!(tri(20), 210);
        assert_eq!(tri(24), 300);
    }
}
