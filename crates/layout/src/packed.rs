//! Symmetric packed interleaved storage: only the lower triangle is kept,
//! halving the memory footprint of SPD batches.
//!
//! The paper's layouts store the full `lda × n` square per matrix even
//! though the Cholesky kernels never touch the strictly-upper part. For
//! symmetric data that wastes almost half the memory. [`PackedChunked`]
//! stores only the `n(n+1)/2` lower-triangle elements per matrix,
//! chunk-interleaved exactly like [`Chunked`](crate::Chunked).
//!
//! **Aliasing contract:** unlike the square layouts, the address map is
//! *symmetric*, not injective: `addr(m, i, j) == addr(m, j, i)`. Reading
//! an upper element transparently reads its lower mirror (correct for
//! symmetric matrices); writing an upper element overwrites the mirror.
//! The batch Cholesky kernels only access `i >= j`, so they run on this
//! layout unchanged — [`PackedChunked`] does **not** implement the
//! injectivity-assuming conversions (`transcode`); use
//! [`pack_symmetric`]/[`unpack_symmetric`] instead.

use crate::traits::{BatchLayout, LayoutKind};
use crate::util::{align_up, tri, WARP_SIZE};
use serde::{Deserialize, Serialize};

/// Chunk-interleaved packed-lower storage for batches of symmetric
/// matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedChunked {
    n: usize,
    batch: usize,
    padded: usize,
    chunk: usize,
}

impl PackedChunked {
    /// A packed layout with chunks of `chunk` matrices.
    ///
    /// # Panics
    /// If `n == 0`, `batch == 0`, or `chunk` is not a positive multiple of
    /// the warp size.
    pub fn new(n: usize, batch: usize, chunk: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        assert!(batch > 0, "batch must be positive");
        assert!(
            chunk > 0 && chunk.is_multiple_of(WARP_SIZE),
            "chunk size must be a positive multiple of the warp size"
        );
        let padded = align_up(batch, chunk);
        PackedChunked {
            n,
            batch,
            padded,
            chunk,
        }
    }

    /// Matrices per chunk.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Elements stored per matrix (the lower-triangle count).
    pub fn elems_per_matrix(&self) -> usize {
        tri(self.n)
    }

    /// Column-major packed index of lower-triangle element `(r, c)`,
    /// `r >= c`: columns stored top-to-bottom, left-to-right.
    #[inline]
    fn tri_index(&self, r: usize, c: usize) -> usize {
        // Column c starts after columns 0..c, which hold (n + n-c+1)·c/2
        // elements.
        c * (2 * self.n - c + 1) / 2 + (r - c)
    }
}

impl BatchLayout for PackedChunked {
    fn n(&self) -> usize {
        self.n
    }

    fn lda(&self) -> usize {
        self.n
    }

    fn batch(&self) -> usize {
        self.batch
    }

    fn padded_batch(&self) -> usize {
        self.padded
    }

    fn len(&self) -> usize {
        (self.padded / self.chunk) * tri(self.n) * self.chunk
    }

    /// Symmetric map: `(i, j)` and `(j, i)` share an address (see the
    /// module-level aliasing contract).
    #[inline]
    fn addr(&self, mat: usize, row: usize, col: usize) -> usize {
        debug_assert!(mat < self.padded && row < self.n && col < self.n);
        let (r, c) = if row >= col { (row, col) } else { (col, row) };
        let chunk_idx = mat / self.chunk;
        let lane = mat % self.chunk;
        chunk_idx * tri(self.n) * self.chunk + self.tri_index(r, c) * self.chunk + lane
    }

    fn lane_stride(&self) -> usize {
        1
    }

    fn kind(&self) -> LayoutKind {
        // Packed storage is a member of the chunked-interleaved family.
        LayoutKind::Chunked
    }
}

/// Packs the lower triangles of a square-layout batch into a packed
/// buffer. Upper-triangle source elements are ignored.
pub fn pack_symmetric<T: Copy, L: BatchLayout>(
    src_layout: &L,
    src: &[T],
    dst_layout: &PackedChunked,
    dst: &mut [T],
) {
    assert_eq!(src_layout.n(), dst_layout.n(), "layouts disagree on n");
    assert_eq!(
        src_layout.batch(),
        dst_layout.batch(),
        "layouts disagree on batch"
    );
    assert!(dst.len() >= dst_layout.len(), "destination too short");
    let n = src_layout.n();
    for mat in 0..src_layout.batch() {
        for c in 0..n {
            for r in c..n {
                dst[dst_layout.addr(mat, r, c)] = src[src_layout.addr(mat, r, c)];
            }
        }
    }
}

/// Unpacks a packed batch into a square-layout buffer, mirroring the lower
/// triangle into the upper one (the matrices are symmetric by contract).
pub fn unpack_symmetric<T: Copy, L: BatchLayout>(
    src_layout: &PackedChunked,
    src: &[T],
    dst_layout: &L,
    dst: &mut [T],
) {
    assert_eq!(src_layout.n(), dst_layout.n(), "layouts disagree on n");
    assert_eq!(
        src_layout.batch(),
        dst_layout.batch(),
        "layouts disagree on batch"
    );
    assert!(dst.len() >= dst_layout.len(), "destination too short");
    let n = src_layout.n();
    for mat in 0..src_layout.batch() {
        for c in 0..n {
            for r in c..n {
                let v = src[src_layout.addr(mat, r, c)];
                dst[dst_layout.addr(mat, r, c)] = v;
                if r != c {
                    dst[dst_layout.addr(mat, c, r)] = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Canonical, Chunked};

    #[test]
    fn footprint_is_half_of_square() {
        let packed = PackedChunked::new(24, 16384, 64);
        let square = Chunked::new(24, 16384, 64);
        let ratio = packed.len() as f64 / square.len() as f64;
        // tri(24)/24² = 300/576 ≈ 0.52.
        assert!((ratio - 300.0 / 576.0).abs() < 1e-12);
    }

    #[test]
    fn addresses_are_symmetric_and_lower_injective() {
        let l = PackedChunked::new(6, 96, 32);
        let mut seen = std::collections::HashSet::new();
        for mat in 0..l.padded_batch() {
            for c in 0..6 {
                for r in c..6 {
                    let a = l.addr(mat, r, c);
                    assert!(a < l.len());
                    assert!(seen.insert(a), "duplicate address for ({r},{c})");
                    assert_eq!(a, l.addr(mat, c, r), "symmetry");
                }
            }
        }
        assert_eq!(seen.len(), l.padded_batch() * tri(6));
    }

    #[test]
    fn lane_adjacency_holds() {
        let l = PackedChunked::new(5, 64, 32);
        for m in 0..31 {
            assert_eq!(l.addr(m + 1, 3, 2), l.addr(m, 3, 2) + 1);
        }
    }

    #[test]
    fn pack_unpack_round_trips_symmetric_data() {
        let n = 7;
        let batch = 50;
        let square = Canonical::new(n, batch);
        let mut data = vec![0.0f32; square.len()];
        // Symmetric fill.
        for mat in 0..batch {
            for c in 0..n {
                for r in c..n {
                    let v = (mat * 100 + r * 10 + c) as f32;
                    data[square.addr(mat, r, c)] = v;
                    data[square.addr(mat, c, r)] = v;
                }
            }
        }
        let packed = PackedChunked::new(n, batch, 32);
        let mut p = vec![0.0f32; packed.len()];
        pack_symmetric(&square, &data, &packed, &mut p);
        let mut back = vec![0.0f32; square.len()];
        unpack_symmetric(&packed, &p, &square, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn tri_index_covers_range_without_gaps() {
        let l = PackedChunked::new(9, 32, 32);
        let mut idx: Vec<usize> = Vec::new();
        for c in 0..9 {
            for r in c..9 {
                idx.push(l.tri_index(r, c));
            }
        }
        idx.sort_unstable();
        let expect: Vec<usize> = (0..tri(9)).collect();
        assert_eq!(idx, expect);
    }
}
