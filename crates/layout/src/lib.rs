//! Batch matrix data layouts for very small matrices.
//!
//! This crate implements the three memory layouts studied in *Autotuning
//! Batch Cholesky Factorization in CUDA with Interleaved Layout of Matrices*
//! (IPPS 2017):
//!
//! * [`Canonical`] — the traditional layout: each matrix is a contiguous
//!   column-major block, matrices stored one after another. Warp-level reads
//!   of the same element across matrices are scattered (uncoalesced).
//! * [`Interleaved`] — the batch index is the fastest-growing dimension:
//!   consecutive memory locations hold the element with the same (row, col)
//!   of consecutive matrices. Every warp read is perfectly coalesced.
//! * [`Chunked`] — interleaving restricted to chunks of `chunk` matrices
//!   (a multiple of the warp size). Each chunk is a contiguous region, so
//!   reads stay coalesced *and* each matrix's elements stay spatially close.
//!
//! All layouts address elements of a logically `n × n` matrix stored with a
//! leading dimension `lda >= n`. Addresses are expressed in **elements**
//! (not bytes) from the start of the batch buffer; multiply by
//! `size_of::<f32>()` for byte addresses.
//!
//! # Example
//!
//! ```
//! use ibcf_layout::{BatchLayout, Chunked, Interleaved, Canonical};
//!
//! let n = 4;
//! let batch = 128;
//! let canonical = Canonical::new(n, batch);
//! let interleaved = Interleaved::new(n, batch);
//! let chunked = Chunked::new(n, batch, 64);
//!
//! // Same logical element, three different physical addresses.
//! assert_eq!(canonical.addr(5, 2, 1), 5 * 16 + 1 * 4 + 2);
//! assert_eq!(interleaved.addr(5, 2, 1), (1 * 4 + 2) * 128 + 5);
//! assert_eq!(chunked.addr(70, 2, 1), 64 * 16 + (1 * 4 + 2) * 64 + 6);
//! ```

// `unsafe` is denied crate-wide and allowed in exactly one place: the
// aligned allocator in `alloc`, which needs raw allocation calls.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod canonical;
mod chunked;
mod convert;
mod interleaved;
mod packed;
mod traits;
mod util;

pub use alloc::{alloc_aligned, alloc_batch, AlignedVec, BUFFER_ALIGN};
pub use canonical::Canonical;
pub use chunked::Chunked;
pub use convert::{
    gather_lower, gather_matrix, gather_matrix_affine, scatter_batch_affine, scatter_lower,
    scatter_matrix, scatter_matrix_affine, transcode, transcode_into,
};
pub use interleaved::Interleaved;
pub use packed::{pack_symmetric, unpack_symmetric, PackedChunked};
pub use traits::{BatchLayout, LayoutKind};
pub use util::{align_up, is_multiple_of_warp, tri, WARP_SIZE};

use serde::{Deserialize, Serialize};

/// A dynamically-dispatched layout, convenient where the layout is chosen at
/// run time (e.g. by the autotuner). All methods forward to the concrete
/// layout with an inlined `match`, so the cost is a predictable branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Traditional layout: contiguous column-major matrices.
    Canonical(Canonical),
    /// Fully interleaved layout (batch index fastest).
    Interleaved(Interleaved),
    /// Interleaved within chunks of a fixed number of matrices.
    Chunked(Chunked),
    /// Packed-lower symmetric storage, chunk-interleaved (see
    /// [`PackedChunked`] for the aliasing contract).
    Packed(PackedChunked),
}

impl Layout {
    /// Builds the layout named by `kind` for a batch of `batch` matrices of
    /// dimension `n`. `chunk` is only consulted for [`LayoutKind::Chunked`].
    pub fn build(kind: LayoutKind, n: usize, batch: usize, chunk: usize) -> Self {
        match kind {
            LayoutKind::Canonical => Layout::Canonical(Canonical::new(n, batch)),
            LayoutKind::Interleaved => Layout::Interleaved(Interleaved::new(n, batch)),
            LayoutKind::Chunked => Layout::Chunked(Chunked::new(n, batch, chunk)),
        }
    }
}

macro_rules! fwd {
    ($self:ident, $m:ident ( $($arg:expr),* )) => {
        match $self {
            Layout::Canonical(l) => l.$m($($arg),*),
            Layout::Interleaved(l) => l.$m($($arg),*),
            Layout::Chunked(l) => l.$m($($arg),*),
            Layout::Packed(l) => l.$m($($arg),*),
        }
    };
}

impl BatchLayout for Layout {
    #[inline]
    fn n(&self) -> usize {
        fwd!(self, n())
    }
    #[inline]
    fn lda(&self) -> usize {
        fwd!(self, lda())
    }
    #[inline]
    fn batch(&self) -> usize {
        fwd!(self, batch())
    }
    #[inline]
    fn padded_batch(&self) -> usize {
        fwd!(self, padded_batch())
    }
    #[inline]
    fn len(&self) -> usize {
        fwd!(self, len())
    }
    #[inline]
    fn addr(&self, mat: usize, row: usize, col: usize) -> usize {
        fwd!(self, addr(mat, row, col))
    }
    #[inline]
    fn lane_stride(&self) -> usize {
        fwd!(self, lane_stride())
    }
    #[inline]
    fn kind(&self) -> LayoutKind {
        fwd!(self, kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_dispatches_by_kind() {
        let l = Layout::build(LayoutKind::Canonical, 3, 10, 32);
        assert_eq!(l.kind(), LayoutKind::Canonical);
        let l = Layout::build(LayoutKind::Interleaved, 3, 10, 32);
        assert_eq!(l.kind(), LayoutKind::Interleaved);
        let l = Layout::build(LayoutKind::Chunked, 3, 64, 32);
        assert_eq!(l.kind(), LayoutKind::Chunked);
    }

    #[test]
    fn enum_forwards_addresses() {
        let c = Chunked::new(5, 128, 32);
        let l = Layout::Chunked(c);
        for m in [0, 31, 32, 127] {
            for i in 0..5 {
                for j in 0..5 {
                    assert_eq!(l.addr(m, i, j), c.addr(m, i, j));
                }
            }
        }
    }
}
