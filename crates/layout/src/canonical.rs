//! The traditional batch layout: contiguous column-major matrices.

use crate::traits::{BatchLayout, LayoutKind};
use serde::{Deserialize, Serialize};

/// Contiguous column-major matrices stored one after another.
///
/// Matrix `m` occupies elements `[m * stride, m * stride + lda * n)`;
/// element `(i, j)` of matrix `m` is at `m * stride + j * lda + i`. This is
/// the layout cuBLAS/MAGMA batched routines use, and the baseline the paper
/// compares against: for matrices smaller than a warp no warp-level read
/// across the batch can be coalesced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Canonical {
    n: usize,
    lda: usize,
    batch: usize,
    /// Element distance between consecutive matrices (`>= lda * n`).
    stride: usize,
}

impl Canonical {
    /// A canonical layout with `lda == n` and densely packed matrices.
    pub fn new(n: usize, batch: usize) -> Self {
        Self::with_strides(n, n, batch, n * n)
    }

    /// A canonical layout with explicit leading dimension and matrix stride.
    ///
    /// # Panics
    /// If `n == 0`, `lda < n`, or `stride < lda * n`.
    pub fn with_strides(n: usize, lda: usize, batch: usize, stride: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        assert!(lda >= n, "leading dimension must be >= n");
        assert!(stride >= lda * n, "matrix stride must cover the matrix");
        Self {
            n,
            lda,
            batch,
            stride,
        }
    }

    /// Element distance between consecutive matrices.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl BatchLayout for Canonical {
    fn n(&self) -> usize {
        self.n
    }

    fn lda(&self) -> usize {
        self.lda
    }

    fn batch(&self) -> usize {
        self.batch
    }

    fn padded_batch(&self) -> usize {
        self.batch
    }

    fn len(&self) -> usize {
        self.batch * self.stride
    }

    #[inline]
    fn addr(&self, mat: usize, row: usize, col: usize) -> usize {
        debug_assert!(mat < self.padded_batch() && row < self.lda && col < self.n);
        mat * self.stride + col * self.lda + row
    }

    fn lane_stride(&self) -> usize {
        self.stride
    }

    fn kind(&self) -> LayoutKind {
        LayoutKind::Canonical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_addressing() {
        let l = Canonical::new(3, 4);
        // Matrix 0 occupies [0, 9), column-major.
        assert_eq!(l.addr(0, 0, 0), 0);
        assert_eq!(l.addr(0, 2, 0), 2);
        assert_eq!(l.addr(0, 0, 1), 3);
        assert_eq!(l.addr(0, 2, 2), 8);
        // Matrix 1 starts right after.
        assert_eq!(l.addr(1, 0, 0), 9);
        assert_eq!(l.len(), 36);
    }

    #[test]
    fn padded_lda_and_stride() {
        let l = Canonical::with_strides(3, 4, 2, 16);
        assert_eq!(l.addr(0, 0, 1), 4);
        assert_eq!(l.addr(1, 0, 0), 16);
        assert_eq!(l.len(), 32);
        assert_eq!(l.lane_stride(), 16);
    }

    #[test]
    fn injective_over_domain() {
        let l = Canonical::with_strides(3, 3, 5, 9);
        let mut seen = std::collections::HashSet::new();
        for m in 0..5 {
            for j in 0..3 {
                for i in 0..3 {
                    assert!(seen.insert(l.addr(m, i, j)));
                }
            }
        }
        assert_eq!(seen.len(), 45);
        assert!(seen.iter().all(|&a| a < l.len()));
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn rejects_small_lda() {
        let _ = Canonical::with_strides(4, 3, 1, 16);
    }

    #[test]
    #[should_panic(expected = "matrix stride")]
    fn rejects_small_stride() {
        let _ = Canonical::with_strides(4, 4, 1, 15);
    }
}
