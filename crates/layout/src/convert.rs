//! Conversions between layouts and between layouts and plain column-major
//! matrices.

use crate::traits::BatchLayout;

/// Copies matrix `mat` out of `src` (laid out by `layout`) into `dst`, a
/// plain column-major `lda × n` buffer with `dst_lda >= n`.
///
/// # Panics
/// If `mat` is out of range, `dst` is too short, or `dst_lda < n`.
pub fn gather_matrix<T: Copy, L: BatchLayout>(
    layout: &L,
    src: &[T],
    mat: usize,
    dst: &mut [T],
    dst_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(dst_lda >= n, "destination leading dimension too small");
    assert!(dst.len() >= dst_lda * n, "destination buffer too short");
    for col in 0..n {
        for row in 0..n {
            dst[col * dst_lda + row] = src[layout.addr(mat, row, col)];
        }
    }
}

/// Copies a plain column-major `n × n` matrix (`src_lda >= n`) into slot
/// `mat` of `dst`, laid out by `layout`.
///
/// # Panics
/// If `mat` is out of range, `src` is too short, or `src_lda < n`.
pub fn scatter_matrix<T: Copy, L: BatchLayout>(
    layout: &L,
    dst: &mut [T],
    mat: usize,
    src: &[T],
    src_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(src_lda >= n, "source leading dimension too small");
    assert!(src.len() >= src_lda * n, "source buffer too short");
    for col in 0..n {
        for row in 0..n {
            dst[layout.addr(mat, row, col)] = src[col * src_lda + row];
        }
    }
}

/// Copies the lower triangle (diagonal included) of matrix `mat` out of
/// `src` into `dst`, a plain column-major buffer. The strictly-upper part
/// of `dst` is left untouched.
///
/// Cholesky routines (`potrf_unblocked` and the tile kernels) never read
/// or write above the diagonal, so this is the right gather for the
/// factorization hot path: it halves the copy traffic of
/// [`gather_matrix`]. Use the full-matrix variant where the consumer
/// reads the whole square (e.g. reconstruction verifiers).
///
/// # Panics
/// If `mat` is out of range, `dst` is too short, or `dst_lda < n`.
pub fn gather_lower<T: Copy, L: BatchLayout>(
    layout: &L,
    src: &[T],
    mat: usize,
    dst: &mut [T],
    dst_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(dst_lda >= n, "destination leading dimension too small");
    assert!(dst.len() >= dst_lda * n, "destination buffer too short");
    for col in 0..n {
        for row in col..n {
            dst[col * dst_lda + row] = src[layout.addr(mat, row, col)];
        }
    }
}

/// Copies the lower triangle (diagonal included) of a plain column-major
/// matrix into slot `mat` of `dst`. The strictly-upper elements of the
/// laid-out slot are left untouched — the counterpart of [`gather_lower`]
/// for writing factors back.
///
/// # Panics
/// If `mat` is out of range, `src` is too short, or `src_lda < n`.
pub fn scatter_lower<T: Copy, L: BatchLayout>(
    layout: &L,
    dst: &mut [T],
    mat: usize,
    src: &[T],
    src_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(src_lda >= n, "source leading dimension too small");
    assert!(src.len() >= src_lda * n, "source buffer too short");
    for col in 0..n {
        for row in col..n {
            dst[layout.addr(mat, row, col)] = src[col * src_lda + row];
        }
    }
}

/// Re-lays-out a batch from `src_layout` into a freshly allocated buffer in
/// `dst_layout`. Elements of padding slots in the destination are left at
/// `T::default()`.
///
/// # Panics
/// If the two layouts disagree on `n` or `batch`, or `src` is too short.
pub fn transcode<T: Copy + Default, A: BatchLayout, B: BatchLayout>(
    src_layout: &A,
    src: &[T],
    dst_layout: &B,
) -> Vec<T> {
    let mut dst = vec![T::default(); dst_layout.len()];
    transcode_into(src_layout, src, dst_layout, &mut dst);
    dst
}

/// Re-lays-out a batch from `src_layout` into a caller-provided buffer in
/// `dst_layout`. Only the `batch()` logical matrices are copied; padding
/// slots in the destination are not touched.
///
/// # Panics
/// If the two layouts disagree on `n` or `batch`, or either buffer is too
/// short.
pub fn transcode_into<T: Copy, A: BatchLayout, B: BatchLayout>(
    src_layout: &A,
    src: &[T],
    dst_layout: &B,
    dst: &mut [T],
) {
    assert_eq!(src_layout.n(), dst_layout.n(), "layouts disagree on n");
    assert_eq!(
        src_layout.batch(),
        dst_layout.batch(),
        "layouts disagree on batch"
    );
    assert!(src.len() >= src_layout.len(), "source buffer too short");
    assert!(
        dst.len() >= dst_layout.len(),
        "destination buffer too short"
    );
    let n = src_layout.n();
    for mat in 0..src_layout.batch() {
        for col in 0..n {
            for row in 0..n {
                dst[dst_layout.addr(mat, row, col)] = src[src_layout.addr(mat, row, col)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Canonical, Chunked, Interleaved};

    fn numbered_canonical(n: usize, batch: usize) -> (Canonical, Vec<f32>) {
        let layout = Canonical::new(n, batch);
        let data: Vec<f32> = (0..layout.len()).map(|x| x as f32).collect();
        (layout, data)
    }

    #[test]
    fn gather_scatter_round_trip() {
        let (layout, data) = numbered_canonical(3, 4);
        let mut m = vec![0.0f32; 9];
        gather_matrix(&layout, &data, 2, &mut m, 3);
        assert_eq!(m, (18..27).map(|x| x as f32).collect::<Vec<_>>());

        let mut copy = vec![0.0f32; layout.len()];
        for mat in 0..4 {
            gather_matrix(&layout, &data, mat, &mut m, 3);
            scatter_matrix(&layout, &mut copy, mat, &m, 3);
        }
        assert_eq!(copy, data);
    }

    #[test]
    fn canonical_to_interleaved_and_back() {
        let (src_layout, data) = numbered_canonical(4, 33);
        let dst_layout = Interleaved::new(4, 33);
        let inter = transcode(&src_layout, &data, &dst_layout);
        // Spot-check: element (1, 2) of matrix 30.
        assert_eq!(
            inter[dst_layout.addr(30, 1, 2)],
            data[src_layout.addr(30, 1, 2)]
        );
        let back = transcode(&dst_layout, &inter, &src_layout);
        assert_eq!(back, data);
    }

    #[test]
    fn interleaved_to_chunked_and_back() {
        let n = 5;
        let batch = 200;
        let a = Interleaved::new(n, batch);
        let data: Vec<f32> = (0..a.len()).map(|x| (x as f32).sin()).collect();
        let b = Chunked::new(n, batch, 64);
        let chunked = transcode(&a, &data, &b);
        let back = transcode(&b, &chunked, &a);
        for mat in 0..batch {
            for col in 0..n {
                for row in 0..n {
                    assert_eq!(back[a.addr(mat, row, col)], data[a.addr(mat, row, col)]);
                }
            }
        }
    }

    #[test]
    fn lower_variants_touch_only_the_lower_triangle() {
        let n = 4;
        let layout = Interleaved::new(n, 33);
        let mut data = vec![-7.0f32; layout.len()];
        let src: Vec<f32> = (0..n * n).map(|x| x as f32).collect();
        scatter_lower(&layout, &mut data, 5, &src, n);
        // Strictly-upper slots of matrix 5 keep the sentinel.
        for col in 0..n {
            for row in 0..n {
                let v = data[layout.addr(5, row, col)];
                if row >= col {
                    assert_eq!(v, src[col * n + row]);
                } else {
                    assert_eq!(v, -7.0, "({row},{col}) was written");
                }
            }
        }
        let mut out = vec![99.0f32; n * n];
        gather_lower(&layout, &data, 5, &mut out, n);
        for col in 0..n {
            for row in 0..n {
                if row >= col {
                    assert_eq!(out[col * n + row], src[col * n + row]);
                } else {
                    assert_eq!(out[col * n + row], 99.0, "({row},{col}) was written");
                }
            }
        }
    }

    #[test]
    fn gather_lower_matches_full_gather_on_lower() {
        let (layout, data) = numbered_canonical(5, 3);
        let mut full = vec![0.0f32; 25];
        let mut low = vec![0.0f32; 25];
        gather_matrix(&layout, &data, 2, &mut full, 5);
        gather_lower(&layout, &data, 2, &mut low, 5);
        for col in 0..5 {
            for row in col..5 {
                assert_eq!(low[col * 5 + row], full[col * 5 + row]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "layouts disagree on n")]
    fn transcode_checks_dimensions() {
        let a = Canonical::new(3, 4);
        let b = Canonical::new(4, 4);
        let data = vec![0.0f32; a.len()];
        let _ = transcode(&a, &data, &b);
    }
}
