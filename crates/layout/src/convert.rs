//! Conversions between layouts and between layouts and plain column-major
//! matrices.

use crate::traits::BatchLayout;

/// Copies matrix `mat` out of `src` (laid out by `layout`) into `dst`, a
/// plain column-major `lda × n` buffer with `dst_lda >= n`.
///
/// # Panics
/// If `mat` is out of range, `dst` is too short, or `dst_lda < n`.
pub fn gather_matrix<T: Copy, L: BatchLayout>(
    layout: &L,
    src: &[T],
    mat: usize,
    dst: &mut [T],
    dst_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(dst_lda >= n, "destination leading dimension too small");
    assert!(dst.len() >= dst_lda * n, "destination buffer too short");
    for col in 0..n {
        for row in 0..n {
            dst[col * dst_lda + row] = src[layout.addr(mat, row, col)];
        }
    }
}

/// Copies a plain column-major `n × n` matrix (`src_lda >= n`) into slot
/// `mat` of `dst`, laid out by `layout`.
///
/// # Panics
/// If `mat` is out of range, `src` is too short, or `src_lda < n`.
pub fn scatter_matrix<T: Copy, L: BatchLayout>(
    layout: &L,
    dst: &mut [T],
    mat: usize,
    src: &[T],
    src_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(src_lda >= n, "source leading dimension too small");
    assert!(src.len() >= src_lda * n, "source buffer too short");
    for col in 0..n {
        for row in 0..n {
            dst[layout.addr(mat, row, col)] = src[col * src_lda + row];
        }
    }
}

/// Resolves `layout`'s address map to its per-matrix affine form
/// `addr(mat, row, col) = base + row·rs + col·cs`, or `None` if the
/// probed corners do not fit one.
///
/// Every in-tree layout family (canonical, interleaved, chunked) is
/// exactly affine within a single matrix — a matrix never straddles an
/// interleave group — so the map can be evaluated once per matrix
/// instead of once per element (the generic `addr` pays a div/mod per
/// call for the chunked family). The corner probes are a cheap
/// validation so exotic `BatchLayout` implementations (e.g. the
/// symmetric packed layout, whose upper triangle mirrors) safely fall
/// back to the element-wise path.
fn matrix_affine<L: BatchLayout>(layout: &L, mat: usize) -> Option<(usize, usize, usize)> {
    let n = layout.n();
    let base = layout.addr(mat, 0, 0);
    if n == 1 {
        return Some((base, 0, 0));
    }
    let rs = layout.addr(mat, 1, 0).checked_sub(base)?;
    let cs = layout.addr(mat, 0, 1).checked_sub(base)?;
    let probe = |row: usize, col: usize| layout.addr(mat, row, col) == base + row * rs + col * cs;
    (probe(1, 1) && probe(n - 1, 0) && probe(0, n - 1) && probe(n - 1, n - 1))
        .then_some((base, rs, cs))
}

/// [`scatter_matrix`], but through the affine fast path where the
/// layout admits one (all in-tree families do): the address map is
/// resolved once per matrix, so the copy loop is one add per element
/// instead of one full `addr` evaluation. Bitwise-identical writes to
/// [`scatter_matrix`] in either case.
///
/// # Panics
/// As [`scatter_matrix`].
pub fn scatter_matrix_affine<T: Copy, L: BatchLayout>(
    layout: &L,
    dst: &mut [T],
    mat: usize,
    src: &[T],
    src_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(src_lda >= n, "source leading dimension too small");
    assert!(src.len() >= src_lda * n, "source buffer too short");
    if n == 0 {
        return;
    }
    match matrix_affine(layout, mat) {
        Some((base, rs, cs)) => {
            assert!(
                base + (n - 1) * rs + (n - 1) * cs < dst.len(),
                "affine span out of range"
            );
            for col in 0..n {
                let mut at = base + col * cs;
                for row in 0..n {
                    dst[at] = src[col * src_lda + row];
                    at += rs;
                }
            }
        }
        None => scatter_matrix(layout, dst, mat, src, src_lda),
    }
}

/// [`gather_matrix`], but through the affine fast path where the
/// layout admits one — the read-side twin of [`scatter_matrix_affine`],
/// used by the serving reply path to walk factors back out of the
/// batch buffer without paying the generic `addr` per element.
///
/// # Panics
/// As [`gather_matrix`].
pub fn gather_matrix_affine<T: Copy, L: BatchLayout>(
    layout: &L,
    src: &[T],
    mat: usize,
    dst: &mut [T],
    dst_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(dst_lda >= n, "destination leading dimension too small");
    assert!(dst.len() >= dst_lda * n, "destination buffer too short");
    if n == 0 {
        return;
    }
    match matrix_affine(layout, mat) {
        Some((base, rs, cs)) => {
            assert!(
                base + (n - 1) * rs + (n - 1) * cs < src.len(),
                "affine span out of range"
            );
            for col in 0..n {
                let mut at = base + col * cs;
                for row in 0..n {
                    dst[col * dst_lda + row] = src[at];
                    at += rs;
                }
            }
        }
        None => gather_matrix(layout, src, mat, dst, dst_lda),
    }
}

/// Scatters `mats.len()` column-major source matrices (`src_lda >= n`
/// each) into slots `0..mats.len()` of `dst` in one pass, exploiting
/// lane adjacency: matrices that sit consecutively within an interleave
/// group (`addr(m+1, r, c) == addr(m, r, c) + 1`) are written as one
/// contiguous block per element, and elements are walked in address
/// order — so for the interleaved families the destination is written
/// as a single (near-)sequential stream instead of one strided pass per
/// matrix. Per-matrix strided writes revisit the same cache sets
/// `n` times per matrix (pathologically so when the stride is a power
/// of two); the blocked order touches every destination line exactly
/// once.
///
/// Runs of adjacent matrices are discovered by probing base addresses,
/// so chunk boundaries, ragged tails, and non-adjacent layouts
/// (canonical) all degrade gracefully to [`scatter_matrix_affine`].
/// Writes are bitwise-identical to scattering each matrix individually.
///
/// # Panics
/// If `mats.len()` exceeds the layout's padded batch or any source is
/// shorter than `src_lda * n`.
pub fn scatter_batch_affine<T: Copy, L: BatchLayout>(
    layout: &L,
    dst: &mut [T],
    mats: &[&[T]],
    src_lda: usize,
) {
    let n = layout.n();
    assert!(mats.len() <= layout.padded_batch(), "too many matrices");
    assert!(src_lda >= n, "source leading dimension too small");
    for (m, src) in mats.iter().enumerate() {
        assert!(src.len() >= src_lda * n, "source {m} too short");
    }
    if n == 0 {
        return;
    }
    let count = mats.len();
    let mut m0 = 0;
    while m0 < count {
        let base0 = layout.addr(m0, 0, 0);
        let mut m1 = m0 + 1;
        while m1 < count && layout.addr(m1, 0, 0) == base0 + (m1 - m0) {
            m1 += 1;
        }
        let run = m1 - m0;
        let blocked = match (matrix_affine(layout, m0), matrix_affine(layout, m1 - 1)) {
            (Some((base, rs, cs)), Some((last, lrs, lcs)))
                if last == base + run - 1 && lrs == rs && lcs == cs =>
            {
                Some((base, rs, cs))
            }
            _ => None,
        };
        match blocked {
            Some((base, rs, cs)) => {
                assert!(
                    base + (n - 1) * rs + (n - 1) * cs + run <= dst.len(),
                    "affine span out of range"
                );
                // `rs <= cs` for every in-tree family, so col-outer /
                // row-inner visits strictly increasing addresses.
                for col in 0..n {
                    for row in 0..n {
                        let at = base + row * rs + col * cs;
                        let e = col * src_lda + row;
                        let block = &mut dst[at..at + run];
                        for (slot, mat) in block.iter_mut().zip(&mats[m0..m1]) {
                            *slot = mat[e];
                        }
                    }
                }
            }
            None => {
                for (m, mat) in mats.iter().enumerate().take(m1).skip(m0) {
                    scatter_matrix_affine(layout, dst, m, mat, src_lda);
                }
            }
        }
        m0 = m1;
    }
}

/// Copies the lower triangle (diagonal included) of matrix `mat` out of
/// `src` into `dst`, a plain column-major buffer. The strictly-upper part
/// of `dst` is left untouched.
///
/// Cholesky routines (`potrf_unblocked` and the tile kernels) never read
/// or write above the diagonal, so this is the right gather for the
/// factorization hot path: it halves the copy traffic of
/// [`gather_matrix`]. Use the full-matrix variant where the consumer
/// reads the whole square (e.g. reconstruction verifiers).
///
/// # Panics
/// If `mat` is out of range, `dst` is too short, or `dst_lda < n`.
pub fn gather_lower<T: Copy, L: BatchLayout>(
    layout: &L,
    src: &[T],
    mat: usize,
    dst: &mut [T],
    dst_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(dst_lda >= n, "destination leading dimension too small");
    assert!(dst.len() >= dst_lda * n, "destination buffer too short");
    for col in 0..n {
        for row in col..n {
            dst[col * dst_lda + row] = src[layout.addr(mat, row, col)];
        }
    }
}

/// Copies the lower triangle (diagonal included) of a plain column-major
/// matrix into slot `mat` of `dst`. The strictly-upper elements of the
/// laid-out slot are left untouched — the counterpart of [`gather_lower`]
/// for writing factors back.
///
/// # Panics
/// If `mat` is out of range, `src` is too short, or `src_lda < n`.
pub fn scatter_lower<T: Copy, L: BatchLayout>(
    layout: &L,
    dst: &mut [T],
    mat: usize,
    src: &[T],
    src_lda: usize,
) {
    let n = layout.n();
    assert!(mat < layout.padded_batch(), "matrix index out of range");
    assert!(src_lda >= n, "source leading dimension too small");
    assert!(src.len() >= src_lda * n, "source buffer too short");
    for col in 0..n {
        for row in col..n {
            dst[layout.addr(mat, row, col)] = src[col * src_lda + row];
        }
    }
}

/// Re-lays-out a batch from `src_layout` into a freshly allocated buffer in
/// `dst_layout`. Elements of padding slots in the destination are left at
/// `T::default()`.
///
/// # Panics
/// If the two layouts disagree on `n` or `batch`, or `src` is too short.
pub fn transcode<T: Copy + Default, A: BatchLayout, B: BatchLayout>(
    src_layout: &A,
    src: &[T],
    dst_layout: &B,
) -> Vec<T> {
    let mut dst = vec![T::default(); dst_layout.len()];
    transcode_into(src_layout, src, dst_layout, &mut dst);
    dst
}

/// Re-lays-out a batch from `src_layout` into a caller-provided buffer in
/// `dst_layout`. Only the `batch()` logical matrices are copied; padding
/// slots in the destination are not touched.
///
/// # Panics
/// If the two layouts disagree on `n` or `batch`, or either buffer is too
/// short.
pub fn transcode_into<T: Copy, A: BatchLayout, B: BatchLayout>(
    src_layout: &A,
    src: &[T],
    dst_layout: &B,
    dst: &mut [T],
) {
    assert_eq!(src_layout.n(), dst_layout.n(), "layouts disagree on n");
    assert_eq!(
        src_layout.batch(),
        dst_layout.batch(),
        "layouts disagree on batch"
    );
    assert!(src.len() >= src_layout.len(), "source buffer too short");
    assert!(
        dst.len() >= dst_layout.len(),
        "destination buffer too short"
    );
    let n = src_layout.n();
    for mat in 0..src_layout.batch() {
        for col in 0..n {
            for row in 0..n {
                dst[dst_layout.addr(mat, row, col)] = src[src_layout.addr(mat, row, col)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Canonical, Chunked, Interleaved};

    fn numbered_canonical(n: usize, batch: usize) -> (Canonical, Vec<f32>) {
        let layout = Canonical::new(n, batch);
        let data: Vec<f32> = (0..layout.len()).map(|x| x as f32).collect();
        (layout, data)
    }

    #[test]
    fn gather_scatter_round_trip() {
        let (layout, data) = numbered_canonical(3, 4);
        let mut m = vec![0.0f32; 9];
        gather_matrix(&layout, &data, 2, &mut m, 3);
        assert_eq!(m, (18..27).map(|x| x as f32).collect::<Vec<_>>());

        let mut copy = vec![0.0f32; layout.len()];
        for mat in 0..4 {
            gather_matrix(&layout, &data, mat, &mut m, 3);
            scatter_matrix(&layout, &mut copy, mat, &m, 3);
        }
        assert_eq!(copy, data);
    }

    #[test]
    fn canonical_to_interleaved_and_back() {
        let (src_layout, data) = numbered_canonical(4, 33);
        let dst_layout = Interleaved::new(4, 33);
        let inter = transcode(&src_layout, &data, &dst_layout);
        // Spot-check: element (1, 2) of matrix 30.
        assert_eq!(
            inter[dst_layout.addr(30, 1, 2)],
            data[src_layout.addr(30, 1, 2)]
        );
        let back = transcode(&dst_layout, &inter, &src_layout);
        assert_eq!(back, data);
    }

    #[test]
    fn interleaved_to_chunked_and_back() {
        let n = 5;
        let batch = 200;
        let a = Interleaved::new(n, batch);
        let data: Vec<f32> = (0..a.len()).map(|x| (x as f32).sin()).collect();
        let b = Chunked::new(n, batch, 64);
        let chunked = transcode(&a, &data, &b);
        let back = transcode(&b, &chunked, &a);
        for mat in 0..batch {
            for col in 0..n {
                for row in 0..n {
                    assert_eq!(back[a.addr(mat, row, col)], data[a.addr(mat, row, col)]);
                }
            }
        }
    }

    #[test]
    fn lower_variants_touch_only_the_lower_triangle() {
        let n = 4;
        let layout = Interleaved::new(n, 33);
        let mut data = vec![-7.0f32; layout.len()];
        let src: Vec<f32> = (0..n * n).map(|x| x as f32).collect();
        scatter_lower(&layout, &mut data, 5, &src, n);
        // Strictly-upper slots of matrix 5 keep the sentinel.
        for col in 0..n {
            for row in 0..n {
                let v = data[layout.addr(5, row, col)];
                if row >= col {
                    assert_eq!(v, src[col * n + row]);
                } else {
                    assert_eq!(v, -7.0, "({row},{col}) was written");
                }
            }
        }
        let mut out = vec![99.0f32; n * n];
        gather_lower(&layout, &data, 5, &mut out, n);
        for col in 0..n {
            for row in 0..n {
                if row >= col {
                    assert_eq!(out[col * n + row], src[col * n + row]);
                } else {
                    assert_eq!(out[col * n + row], 99.0, "({row},{col}) was written");
                }
            }
        }
    }

    #[test]
    fn gather_lower_matches_full_gather_on_lower() {
        let (layout, data) = numbered_canonical(5, 3);
        let mut full = vec![0.0f32; 25];
        let mut low = vec![0.0f32; 25];
        gather_matrix(&layout, &data, 2, &mut full, 5);
        gather_lower(&layout, &data, 2, &mut low, 5);
        for col in 0..5 {
            for row in col..5 {
                assert_eq!(low[col * 5 + row], full[col * 5 + row]);
            }
        }
    }

    #[test]
    fn affine_variants_match_generic_on_every_family() {
        let n = 5;
        let batch = 67; // ragged against every interleave granularity
        let layouts: [crate::Layout; 3] = [
            crate::Layout::Canonical(Canonical::new(n, batch)),
            crate::Layout::Interleaved(Interleaved::new(n, batch)),
            crate::Layout::Chunked(Chunked::new(n, batch, 32)),
        ];
        let src: Vec<f32> = (0..n * n).map(|x| (x as f32).cos()).collect();
        for layout in &layouts {
            let mut generic = vec![0.0f32; layout.len()];
            let mut affine = vec![0.0f32; layout.len()];
            for mat in 0..layout.padded_batch() {
                scatter_matrix(layout, &mut generic, mat, &src, n);
                scatter_matrix_affine(layout, &mut affine, mat, &src, n);
            }
            assert_eq!(generic, affine, "{:?}", layout.kind());
            let mut g = vec![0.0f32; n * n];
            let mut a = vec![0.0f32; n * n];
            for mat in 0..layout.padded_batch() {
                gather_matrix(layout, &generic, mat, &mut g, n);
                gather_matrix_affine(layout, &affine, mat, &mut a, n);
                assert_eq!(g, a, "{:?} mat {mat}", layout.kind());
            }
        }
    }

    #[test]
    fn batch_scatter_matches_per_matrix_scatter() {
        let n = 6;
        for batch in [1usize, 31, 64, 67, 130] {
            let layouts: [crate::Layout; 3] = [
                crate::Layout::Canonical(Canonical::new(n, batch)),
                crate::Layout::Interleaved(Interleaved::new(n, batch)),
                crate::Layout::Chunked(Chunked::new(n, batch, 32)),
            ];
            let sources: Vec<Vec<f32>> = (0..batch)
                .map(|m| (0..n * n).map(|e| (m * 100 + e) as f32).collect())
                .collect();
            let refs: Vec<&[f32]> = sources.iter().map(|s| s.as_slice()).collect();
            for layout in &layouts {
                let mut one_by_one = vec![0.0f32; layout.len()];
                for (m, src) in refs.iter().enumerate() {
                    scatter_matrix(layout, &mut one_by_one, m, src, n);
                }
                let mut batched = vec![0.0f32; layout.len()];
                scatter_batch_affine(layout, &mut batched, &refs, n);
                assert_eq!(one_by_one, batched, "{:?} batch {batch}", layout.kind());
            }
        }
    }

    #[test]
    fn affine_probe_rejects_the_mirrored_packed_layout() {
        // The symmetric packed layout mirrors its upper triangle onto the
        // lower one, so it is not affine; the probe must route it to the
        // generic path (same bits either way).
        let layout = crate::PackedChunked::new(4, 9, 32);
        let src: Vec<f32> = (0..16).map(|x| x as f32).collect();
        let mut generic = vec![0.0f32; layout.len()];
        let mut affine = vec![0.0f32; layout.len()];
        for mat in 0..layout.padded_batch() {
            scatter_matrix(&layout, &mut generic, mat, &src, 4);
            scatter_matrix_affine(&layout, &mut affine, mat, &src, 4);
        }
        assert_eq!(generic, affine);
    }

    #[test]
    #[should_panic(expected = "layouts disagree on n")]
    fn transcode_checks_dimensions() {
        let a = Canonical::new(3, 4);
        let b = Canonical::new(4, 4);
        let data = vec![0.0f32; a.len()];
        let _ = transcode(&a, &data, &b);
    }
}
