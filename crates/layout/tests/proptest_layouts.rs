//! Property tests for layout address maps and conversions.

use ibcf_layout::{transcode, BatchLayout, Canonical, Chunked, Interleaved, Layout, LayoutKind};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy over (n, batch, chunk) with chunk a warp multiple <= 512.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=24, 1usize..=300, 1usize..=16).prop_map(|(n, batch, c)| (n, batch, c * 32))
}

fn all_layouts(n: usize, batch: usize, chunk: usize) -> Vec<Layout> {
    vec![
        Layout::build(LayoutKind::Canonical, n, batch, chunk),
        Layout::build(LayoutKind::Interleaved, n, batch, chunk),
        Layout::build(LayoutKind::Chunked, n, batch, chunk),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every layout's address map is injective and in-bounds over the full
    /// padded domain.
    #[test]
    fn addresses_are_injective_and_bounded((n, batch, chunk) in dims()) {
        for layout in all_layouts(n, batch, chunk) {
            let mut seen = HashSet::new();
            for mat in 0..layout.padded_batch() {
                for col in 0..n {
                    for row in 0..n {
                        let a = layout.addr(mat, row, col);
                        prop_assert!(a < layout.len(),
                            "{:?}: addr {} out of bounds {}", layout.kind(), a, layout.len());
                        prop_assert!(seen.insert(a),
                            "{:?}: duplicate address {}", layout.kind(), a);
                    }
                }
            }
        }
    }

    /// Interleaved layouts put adjacent lanes at adjacent addresses: the
    /// precondition for perfect coalescing.
    #[test]
    fn interleaved_lane_adjacency((n, batch, chunk) in dims()) {
        let il = Interleaved::new(n, batch);
        for m in 0..il.padded_batch() - 1 {
            prop_assert_eq!(il.addr(m + 1, 0, 0), il.addr(m, 0, 0) + 1);
        }
        let ch = Chunked::new(n, batch, chunk);
        for m in 0..ch.padded_batch() - 1 {
            // Adjacent except across a chunk boundary.
            if (m + 1) % chunk != 0 {
                prop_assert_eq!(ch.addr(m + 1, n - 1, n - 1), ch.addr(m, n - 1, n - 1) + 1);
            }
        }
    }

    /// Transcoding A -> B -> A is the identity on live (non-padding) data.
    #[test]
    fn transcode_round_trips((n, batch, chunk) in dims(), seed in any::<u64>()) {
        let canon = Canonical::new(n, batch);
        let mut data = vec![0.0f32; canon.len()];
        let mut state = seed;
        for v in data.iter_mut() {
            // Cheap deterministic pseudo-random fill.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = (state >> 40) as f32 / 16777216.0;
        }
        for mid in all_layouts(n, batch, chunk) {
            let there = transcode(&canon, &data, &mid);
            let back = transcode(&mid, &there, &canon);
            prop_assert_eq!(&back, &data, "round trip through {:?}", mid.kind());
        }
    }

    /// Padding never shrinks the batch and is warp-granular for the
    /// interleaved layouts.
    #[test]
    fn padding_invariants((n, batch, chunk) in dims()) {
        for layout in all_layouts(n, batch, chunk) {
            prop_assert!(layout.padded_batch() >= layout.batch());
            if layout.kind().is_interleaved() {
                prop_assert_eq!(layout.padded_batch() % 32, 0);
            }
            prop_assert!(layout.len() >= n * n * layout.batch());
        }
    }
}
